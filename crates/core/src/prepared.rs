//! Shared prepared-dataset artifacts for high-throughput serving.
//!
//! The SUPG sampling stage has per-dataset preprocessing that is
//! independent of any single query: the global [`RankIndex`] is an
//! O(n log n) sort, building [`ImportanceWeights`] is an O(n) pass over
//! every proxy score, and the O(1)-draw [`AliasTable`] is another O(n)
//! construction. A service answering many queries over the same corpus —
//! the production regime this workspace grows toward — must pay all of
//! that once per `(dataset, weight recipe)`, not once per query.
//!
//! [`PreparedDataset`] is that amortization layer: an `Arc`-shared
//! [`ScoredDataset`] (whose rank index every query serves `D(τ)` from)
//! plus a bounded, least-recently-used keyed cache of
//! `(weight_exponent, uniform_mix) → (ImportanceWeights, AliasTable)`
//! built on first use and reused by every subsequent query, from any
//! thread. Sessions accept it via
//! [`SupgSession::over_prepared`](crate::session::SupgSession::over_prepared)
//! / [`over_shared`](crate::session::SupgSession::over_shared); selectors
//! receive it through [`DataView`], which also covers the cold
//! (unprepared) path so one code path serves both.
//!
//! ## Parallel construction
//!
//! Cold-start latency matters too: the first query on a fresh corpus used
//! to pay the whole serial build. [`PreparedDataset::prepare`] constructs
//! the rank index on the [`crate::runtime`] worker pool (chunked key
//! sorts merged pairwise), and [`warm`](PreparedDataset::warm) builds the
//! weight artifacts with the `A(x)^p` transform and the alias-table feeds
//! — including Vose's small/large partition scan
//! ([`alias::feed_slice`]) — evaluated chunk-by-chunk on the same pool.
//! Every parallel step is either element-wise pure or a total-order
//! merge, and the one floating-point reduction (the weight normalizer
//! `Σ A^p`) stays serial — so prepared artifacts are **bit-identical** to
//! the cold serial build at every `parallelism` setting.
//!
//! ## The cold-start sampler fallback
//!
//! Even fully parallel, the alias table is the most expensive sampling
//! artifact; a truly one-shot query does not need O(1) draws at all.
//! [`SamplerStrategy`] picks the backend per query: `Alias` (the
//! default, preserving every bit-parity contract), `Cdf` (always the
//! single-pass [`CdfSampler`] build), or `Auto` (CDF for cold one-shot
//! queries, promoted to the cached alias table once a recipe recurs).
//! The strategy rides on
//! [`SelectorConfig::sampler`](crate::selectors::SelectorConfig) and is
//! surfaced as `SupgSession::sampler_strategy(..)`.
//!
//! ## Cache bounds
//!
//! Recipes are few in steady state, but per-tenant recipes can
//! proliferate; the cache therefore holds at most
//! [`cache_capacity`](PreparedDataset::cache_capacity) entries (default
//! [`DEFAULT_CACHE_CAPACITY`], configurable via
//! [`set_cache_capacity`](PreparedDataset::set_cache_capacity)) and
//! evicts the least-recently-served recipe. Eviction only drops the
//! cache's own `Arc` — sessions holding an evicted artifact keep using it
//! safely.
//!
//! Sharing is by `Arc`, and the cache map sits behind a reader-writer
//! lock: a **warm lookup takes only the shared read lock** (recency is
//! stamped through an atomic, not a map mutation), so any number of
//! concurrent sessions serve cached artifacts without ever serializing —
//! the hot-swap read path of production proxy selectors. Only a cold
//! recipe's *insertion* takes the write lock, and artifact *construction*
//! still happens outside every lock, so sessions warming different
//! recipes never serialize behind each other's O(n) builds either.
//! [`cache_stats`](PreparedDataset::cache_stats) exposes lifetime
//! hit/miss/eviction counters for the serving layer's observability.
//!
//! Determinism: a prepared session runs the exact same artifact objects a
//! cold session would build fresh, so prepared and cold executions of the
//! same seeded query produce identical
//! [`QueryOutcome`](crate::session::QueryOutcome)s (enforced by
//! `crates/core/tests/prepared_parity.rs`).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use supg_sampling::segmented::{normalize_powered_chunk, segment_cumulative, segment_total};
use supg_sampling::weights::validate_scores;
use supg_sampling::{
    alias, apply_exponent, AliasTable, CdfSampler, ImportanceWeights, SegmentedAlias, SegmentedCdf,
    SegmentedWeights, WeightedSampler,
};

use crate::data::ScoredDataset;
use crate::error::SupgError;
use crate::rank::RankIndex;
use crate::runtime::{self, RuntimeConfig};
use crate::segment::{Corpus, SegmentedDataset};
use crate::selectors::SelectorConfig;

/// Default bound on cached weight recipes per dataset — generous (a
/// serving deployment uses a handful), but a bound, so per-tenant recipe
/// churn cannot grow memory without limit.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Which weighted-sampler backend serves a query's importance draws.
///
/// The alias table draws in O(1) but its construction runs several O(n)
/// passes plus the Vose pairing loop; the CDF sampler draws in O(log n)
/// from a single O(n) prefix-sum build. For a **cold one-shot** query the
/// CDF build wins (a query draws `s ≈ 10³–10⁴ ≪ n` records, so draw cost
/// is negligible); for **repeated** queries the cached alias table wins.
///
/// **Seed-stream contract:** the two backends consume the session RNG
/// differently per draw (alias: one uniform index + one uniform float;
/// CDF: one uniform float), so switching strategies changes which records
/// a seeded query samples. Each *backend* is individually deterministic —
/// same data, seed and backend always reproduce the same
/// [`QueryOutcome`](crate::session::QueryOutcome); under `Auto` the
/// backend itself depends on the artifact-cache state (a cold recipe
/// draws through the CDF, a recurring one through the alias table), so
/// only `Alias` and `Cdf` are reproducible independent of query history.
/// Every strategy carries the identical statistical guarantee (pinned by
/// `crates/core/tests/sampler_parity.rs` and the CDF configurations in
/// `crates/core/tests/guarantees.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SamplerStrategy {
    /// Always the O(1)-draw alias table (the default — preserves the
    /// bit-exact prepared ≡ cold parity contract at any parallelism).
    #[default]
    Alias,
    /// Always the O(log n)-draw CDF sampler (cheapest possible setup for
    /// every query; prepared sessions cache the CDF artifacts instead).
    Cdf,
    /// Cold views and the first request for a recipe on a prepared
    /// dataset serve a fresh one-shot CDF sampler; from the second
    /// request on (or after [`PreparedDataset::warm`]) the recipe's alias
    /// table is built, cached and served. Trades the cold/warm bit-parity
    /// of [`Alias`](SamplerStrategy::Alias) for minimum time-to-first-
    /// result on fresh corpora.
    Auto,
}

/// Where a weight recipe stands in a [`PreparedDataset`]'s artifact
/// cache — the cache-state signal the adaptive planner
/// ([`crate::plan`]) resolves sampler strategies from. Obtained via
/// [`PreparedDataset::recipe_state`], a *pure peek*: unlike
/// [`PreparedDataset::artifacts_with`] it never builds anything, never
/// counts a hit or miss, and never advances `Auto`'s promotion memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecipeState {
    /// Never requested — any build will be paid from scratch.
    Cold,
    /// [`SamplerStrategy::Auto`] served its uncached one-shot CDF for
    /// this recipe; its next request promotes to a cached alias table.
    SeenOnce,
    /// CDF artifacts are cached for this recipe.
    WarmCdf,
    /// The alias table is cached — the O(1)-draw steady state.
    WarmAlias,
}

/// Applies a pure element-wise map over `input` in fixed contiguous
/// chunks on the worker pool ([`runtime::cpu_workers`]-clamped),
/// concatenating the results — bit-identical to one serial pass because
/// the map is element-wise.
fn chunked_map(
    input: &[f64],
    rt: &RuntimeConfig,
    f: impl Fn(&[f64]) -> Vec<f64> + Sync,
) -> Vec<f64> {
    let n = input.len();
    let workers = runtime::cpu_workers(rt.parallelism);
    if workers <= 1 || n < runtime::MIN_PARALLEL_INPUT {
        return f(input);
    }
    let pieces = runtime::map_chunks(n, workers, |range| f(&input[range]));
    let mut out = Vec::with_capacity(n);
    for piece in pieces {
        out.extend_from_slice(&piece);
    }
    out
}

/// The sampler a [`WeightArtifacts`] carries: the O(1)-draw alias table
/// or the cheap-to-build O(log n)-draw CDF fallback, each in its flat or
/// segmented (chunk-resident, never concatenated) form.
#[derive(Debug, Clone)]
enum SamplerBackend {
    Alias(AliasTable),
    Cdf(CdfSampler),
    SegAlias(SegmentedAlias),
    SegCdf(SegmentedCdf),
}

/// The importance distribution a [`WeightArtifacts`] carries: flat for
/// [`ScoredDataset`] corpora, per-segment chunks for [`SegmentedDataset`]
/// corpora. Per-index probabilities are bit-identical across the two
/// layouts (see [`supg_sampling::segmented`]), so which store backs a
/// query is unobservable in results.
#[derive(Debug, Clone)]
enum WeightStore {
    Flat(ImportanceWeights),
    Segmented(SegmentedWeights),
}

/// The per-`(dataset, weight recipe)` sampling artifacts: the normalized
/// importance distribution and a prebuilt weighted sampler over it — the
/// O(1)-draw alias table ([`build`](WeightArtifacts::build)) or the CDF
/// fallback ([`build_cdf`](WeightArtifacts::build_cdf)), chosen by the
/// serving layer's [`SamplerStrategy`]. Segmented corpora get the
/// chunk-resident counterparts
/// ([`build_segmented_with`](WeightArtifacts::build_segmented_with) /
/// [`build_segmented_cdf_with`](WeightArtifacts::build_segmented_cdf_with)).
#[derive(Debug, Clone)]
pub struct WeightArtifacts {
    weights: WeightStore,
    sampler: SamplerBackend,
}

impl WeightArtifacts {
    /// Builds the alias-backed artifacts from proxy scores (serial O(n)
    /// passes; see [`ImportanceWeights::from_scores`] for the recipe and
    /// panics).
    pub fn build(scores: &[f64], exponent: f64, uniform_mix: f64) -> Self {
        Self::build_with(scores, exponent, uniform_mix, &RuntimeConfig::sequential())
    }

    /// [`build`](Self::build) with every element-wise pass — the `A(x)^p`
    /// transform, the probability normalization, the alias-table scaling
    /// *and* Vose's small/large partition scan — evaluated chunk-by-chunk
    /// on the worker pool ([`alias::feed_slice`], one chunk per worker). Only the floating-point normalizer reduction
    /// `Σ A^p` and the Vose pairing loop stay serial, so the result is
    /// bit-identical to the serial build at any `parallelism`.
    pub fn build_with(scores: &[f64], exponent: f64, uniform_mix: f64, rt: &RuntimeConfig) -> Self {
        validate_scores(scores, exponent);
        let powered = chunked_map(scores, rt, |chunk| apply_exponent(chunk, exponent));
        let weights = ImportanceWeights::from_powered(powered, uniform_mix);
        let sampler = build_alias_pooled(&weights, runtime::cpu_workers(rt.parallelism));
        Self {
            weights: WeightStore::Flat(weights),
            sampler: SamplerBackend::Alias(sampler),
        }
    }

    /// The chunked build with an **explicit** chunk count, regardless of
    /// machine size — the deterministic core of
    /// [`build_with`](Self::build_with), exposed (like
    /// [`RankIndex::build_chunked`]) so the chunk-partitioned feed path
    /// stays testable even where `available_parallelism` would clamp it
    /// away. Bit-identical to [`build`](Self::build) for every `runs ≥ 1`.
    pub fn build_chunked(scores: &[f64], exponent: f64, uniform_mix: f64, runs: usize) -> Self {
        validate_scores(scores, exponent);
        let runs = runs.max(1);
        let powered = if runs == 1 || scores.len() < runtime::MIN_PARALLEL_INPUT {
            apply_exponent(scores, exponent)
        } else {
            let pieces = runtime::map_chunks(scores.len(), runs, |range| {
                apply_exponent(&scores[range], exponent)
            });
            let mut out = Vec::with_capacity(scores.len());
            for piece in pieces {
                out.extend_from_slice(&piece);
            }
            out
        };
        let weights = ImportanceWeights::from_powered(powered, uniform_mix);
        let sampler = build_alias_pooled(&weights, runs);
        Self {
            weights: WeightStore::Flat(weights),
            sampler: SamplerBackend::Alias(sampler),
        }
    }

    /// Builds the CDF-backed artifacts: the same importance distribution,
    /// sampled through a [`CdfSampler`] whose construction is one serial
    /// prefix-sum pass — the cheapest setup for a cold one-shot query.
    pub fn build_cdf(scores: &[f64], exponent: f64, uniform_mix: f64) -> Self {
        Self::build_cdf_with(scores, exponent, uniform_mix, &RuntimeConfig::sequential())
    }

    /// [`build_cdf`](Self::build_cdf) with the `A(x)^p` transform and
    /// normalization evaluated chunk-by-chunk on the worker pool. The
    /// prefix sum itself is a serial floating-point accumulation by
    /// design (keeping it serial is what makes CDF artifacts bit-identical
    /// wherever they are built), and it is already the cheapest pass of
    /// the build.
    pub fn build_cdf_with(
        scores: &[f64],
        exponent: f64,
        uniform_mix: f64,
        rt: &RuntimeConfig,
    ) -> Self {
        validate_scores(scores, exponent);
        let powered = chunked_map(scores, rt, |chunk| apply_exponent(chunk, exponent));
        let weights = ImportanceWeights::from_powered(powered, uniform_mix);
        let sampler = CdfSampler::new(weights.probs());
        Self {
            weights: WeightStore::Flat(weights),
            sampler: SamplerBackend::Cdf(sampler),
        }
    }

    /// Builds alias-backed artifacts over a segmented corpus, fully in
    /// parallel per segment on the worker pool: the `A(x)^p` transform and
    /// the normalization are element-wise per segment, the alias feeds
    /// ([`alias::feed_slice`]) are one job per segment, and only the
    /// floating-point normalizer reductions stay serial (walked in segment
    /// order — the flat left-to-right sum). Per-index probabilities,
    /// acceptance values, alias targets and seeded draws are all
    /// **bit-identical** to the flat [`build`](Self::build) over the
    /// concatenated scores, at any segment size and any `parallelism`.
    ///
    /// # Panics
    /// As [`build`](Self::build) (bad exponent/mix, zero total mass).
    pub fn build_segmented_with(
        seg: &SegmentedDataset,
        exponent: f64,
        uniform_mix: f64,
        rt: &RuntimeConfig,
    ) -> Self {
        let weights = build_segmented_weights(seg, exponent, uniform_mix, rt);
        let sampler = build_segmented_alias(&weights, rt);
        Self {
            weights: WeightStore::Segmented(weights),
            sampler: SamplerBackend::SegAlias(sampler),
        }
    }

    /// Builds CDF-backed artifacts over a segmented corpus with the
    /// two-level parallel build: per-segment local totals (phase 1) and
    /// per-segment global prefix sums (phase 2) each run as one pool job
    /// per segment, joined by a serial O(#segments) offset scan. The
    /// result is identical at any `parallelism` (each phase is independent
    /// per segment), and per-index probabilities match the flat
    /// distribution bit-for-bit; cumulative values may differ from the
    /// flat [`CdfSampler`] in the final ulp near segment boundaries, so
    /// the bit-exact flat ≡ segmented `QueryOutcome` contract rides on the
    /// default [`SamplerStrategy::Alias`].
    ///
    /// # Panics
    /// As [`build_cdf`](Self::build_cdf).
    pub fn build_segmented_cdf_with(
        seg: &SegmentedDataset,
        exponent: f64,
        uniform_mix: f64,
        rt: &RuntimeConfig,
    ) -> Self {
        let weights = build_segmented_weights(seg, exponent, uniform_mix, rt);
        let sampler = build_segmented_cdf(&weights, rt);
        Self {
            weights: WeightStore::Segmented(weights),
            sampler: SamplerBackend::SegCdf(sampler),
        }
    }

    /// The normalized importance distribution in its flat form.
    ///
    /// # Panics
    /// Panics for segmented-corpus artifacts, which never materialize a
    /// flat distribution — use [`prob`](Self::prob),
    /// [`reweight_factor`](Self::reweight_factor) and
    /// [`restricted_sampler`](Self::restricted_sampler), which serve both
    /// layouts.
    pub fn weights(&self) -> &ImportanceWeights {
        match &self.weights {
            WeightStore::Flat(weights) => weights,
            WeightStore::Segmented(_) => {
                panic!("WeightArtifacts::weights: segmented artifacts have no flat distribution")
            }
        }
    }

    /// Sampling probability `w(x)` of record `i` (layout-independent).
    pub fn prob(&self, i: usize) -> f64 {
        match &self.weights {
            WeightStore::Flat(weights) => weights.prob(i),
            WeightStore::Segmented(weights) => weights.prob(i),
        }
    }

    /// Alias sampler over a subset of records, renormalizing lazily —
    /// the stage-2 table of the two-stage precision selector. Identical
    /// for flat and segmented artifacts of the same recipe (per-index
    /// probabilities are bit-identical).
    ///
    /// # Panics
    /// Panics if `subset` is empty, out of range, or carries zero mass.
    pub fn restricted_sampler(&self, subset: &[usize]) -> AliasTable {
        match &self.weights {
            WeightStore::Flat(weights) => weights.restricted_sampler(subset),
            WeightStore::Segmented(weights) => weights.restricted_sampler(subset),
        }
    }

    /// The prebuilt weighted sampler over the full dataset (alias table
    /// or CDF fallback, flat or segmented, per the build that produced
    /// these artifacts).
    pub fn sampler(&self) -> &dyn WeightedSampler {
        match &self.sampler {
            SamplerBackend::Alias(table) => table,
            SamplerBackend::Cdf(cdf) => cdf,
            SamplerBackend::SegAlias(table) => table,
            SamplerBackend::SegCdf(cdf) => cdf,
        }
    }

    /// The flat alias table, when these artifacts are backed by one
    /// (tests and benchmarks that compare table layouts structurally).
    pub fn alias_sampler(&self) -> Option<&AliasTable> {
        match &self.sampler {
            SamplerBackend::Alias(table) => Some(table),
            _ => None,
        }
    }

    /// True when draws go through a CDF fallback sampler (flat or
    /// segmented).
    pub fn draws_via_cdf(&self) -> bool {
        matches!(
            self.sampler,
            SamplerBackend::Cdf(_) | SamplerBackend::SegCdf(_)
        )
    }

    /// Reweighting factor `m(x) = u(x)/w(x)` of record `i`
    /// (layout-independent — bit-identical across flat and segmented
    /// artifacts of the same recipe).
    pub fn reweight_factor(&self, i: usize) -> f64 {
        match &self.weights {
            WeightStore::Flat(weights) => weights.reweight_factor(i),
            WeightStore::Segmented(weights) => weights.reweight_factor(i),
        }
    }
}

/// The per-segment worker pool used by the segmented artifact builds: one
/// job per segment, [`runtime::cpu_workers`]-clamped, batch size 1 so
/// segments spread across workers evenly.
fn segment_pool(rt: &RuntimeConfig) -> RuntimeConfig {
    RuntimeConfig::default()
        .with_parallelism(runtime::cpu_workers(rt.parallelism))
        .with_batch_size(1)
}

/// The segmented importance distribution: per-segment `A(x)^p` transform
/// and normalization on the worker pool, joined by the one serial
/// floating-point reduction (the normalizer `Σ A^p`, walked over segments
/// in order so it equals the flat left-to-right sum bit-for-bit).
fn build_segmented_weights(
    seg: &SegmentedDataset,
    exponent: f64,
    uniform_mix: f64,
    rt: &RuntimeConfig,
) -> SegmentedWeights {
    let pool = segment_pool(rt);
    let powered: Vec<Vec<f64>> = runtime::parallel_map(&pool, seg.segments(), |s| {
        validate_scores(s.scores(), exponent);
        apply_exponent(s.scores(), exponent)
    });
    let mut total = 0.0f64;
    for chunk in &powered {
        for &p in chunk {
            total += p;
        }
    }
    let n = seg.len();
    let normalized = runtime::parallel_map(&pool, &powered, |chunk| {
        let mut out = chunk.clone();
        normalize_powered_chunk(&mut out, total, uniform_mix, n);
        out
    });
    SegmentedWeights::from_normalized_chunks(normalized)
}

/// The segmented alias construction: the serial validating `Σ` (segment
/// order — the flat reduction), then one [`alias::feed_slice`] pool job
/// per segment, then the serial Vose pairing over the stitched stacks
/// ([`SegmentedAlias::from_feeds`]). Bit-identical to the flat
/// [`build_alias_pooled`] over the concatenated weights.
fn build_segmented_alias(weights: &SegmentedWeights, rt: &RuntimeConfig) -> SegmentedAlias {
    let n = weights.len();
    let k = weights.num_segments();
    let mut total = 0.0f64;
    for c in 0..k {
        for &w in weights.chunk(c) {
            total += w;
        }
    }
    assert!(total > 0.0, "SegmentedAlias: weights sum to zero");
    let mut offsets = Vec::with_capacity(k);
    let mut offset = 0usize;
    for c in 0..k {
        offsets.push(offset);
        offset += weights.chunk(c).len();
    }
    let jobs: Vec<usize> = (0..k).collect();
    let feeds = runtime::parallel_map(&segment_pool(rt), &jobs, |&c| {
        alias::feed_slice(weights.chunk(c), total, n, offsets[c])
    });
    SegmentedAlias::from_feeds(feeds)
}

/// The two-level parallel CDF build: per-segment local totals (phase 1)
/// and per-segment global prefix sums (phase 2) each one pool job per
/// segment, joined by a serial O(#segments) offset scan. Identical to
/// [`SegmentedCdf::from_weight_chunks`] at any `parallelism`.
fn build_segmented_cdf(weights: &SegmentedWeights, rt: &RuntimeConfig) -> SegmentedCdf {
    let pool = segment_pool(rt);
    let k = weights.num_segments();
    let jobs: Vec<usize> = (0..k).collect();
    let totals = runtime::parallel_map(&pool, &jobs, |&c| segment_total(weights.chunk(c)));
    let mut starts = Vec::with_capacity(k);
    let mut acc = 0.0f64;
    for &t in &totals {
        starts.push(acc);
        acc += t;
    }
    let cumulative = runtime::parallel_map(&pool, &jobs, |&c| {
        segment_cumulative(weights.chunk(c), starts[c])
    });
    SegmentedCdf::from_cumulative_chunks(cumulative)
}

/// The alias construction over an existing distribution: the serial `Σ`
/// normalizer, then [`alias::feed_slice`] chunked over `runs` pool
/// workers (normalize, scale and small/large classification evaluated
/// per chunk), then the serial Vose pairing. Chunks cover contiguous
/// index ranges in order, so the concatenated stacks equal the serial
/// scan's and the table is bit-identical at any `runs`.
fn build_alias_pooled(weights: &ImportanceWeights, runs: usize) -> AliasTable {
    let probs = weights.probs();
    let n = probs.len();
    // The lone floating-point reduction, kept serial so prepared ≡ cold
    // stays bit-exact. (The probs already sum to ≈1; re-normalizing by
    // their exact sum is what `AliasTable::new` does too.)
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "AliasTable: weights sum to zero");
    if runs <= 1 || n < runtime::MIN_PARALLEL_INPUT {
        return AliasTable::from_feeds(vec![alias::feed_slice(probs, total, n, 0)]);
    }
    let feeds = runtime::map_chunks(n, runs, |range| {
        alias::feed_slice(&probs[range.clone()], total, n, range.start)
    });
    AliasTable::from_feeds(feeds)
}

/// Cache key: the exact bit patterns of the weight recipe plus the
/// sampler backend and the corpus segment layout, so recipes that differ
/// by any representable amount — or by how they draw, or by how the
/// corpus is segmented — get distinct artifacts. (`layout` is 0 for flat
/// corpora and the segment size for segmented ones; serving pools that
/// key artifacts by dataset handle inherit the distinction.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RecipeKey {
    exponent_bits: u64,
    mix_bits: u64,
    cdf: bool,
    layout: u64,
}

impl RecipeKey {
    fn alias(exponent: f64, uniform_mix: f64) -> Self {
        Self {
            exponent_bits: exponent.to_bits(),
            mix_bits: uniform_mix.to_bits(),
            cdf: false,
            layout: 0,
        }
    }

    fn cdf(exponent: f64, uniform_mix: f64) -> Self {
        Self {
            cdf: true,
            ..Self::alias(exponent, uniform_mix)
        }
    }

    fn with_layout(self, layout: u64) -> Self {
        Self { layout, ..self }
    }
}

/// One cached recipe: the shared artifacts plus an atomically stamped
/// last-served recency mark, updatable through the cache's *read* lock.
struct CacheEntry {
    arts: Arc<WeightArtifacts>,
    last_used: AtomicU64,
}

/// The `RwLock`-guarded cache state: recipe → [`CacheEntry`], the
/// capacity bound, and the recipes [`SamplerStrategy::Auto`] has served a
/// one-shot CDF for (its "second request promotes to alias" memory).
/// The monotone recency clock lives *outside* the lock (on
/// [`PreparedDataset`]) so warm hits never need the write lock.
struct ArtifactCache {
    map: HashMap<RecipeKey, CacheEntry>,
    capacity: usize,
    auto_seen: HashSet<RecipeKey>,
}

impl ArtifactCache {
    /// Serves a cached recipe and freshens its recency stamp — `&self`,
    /// so the hot path runs under the shared read lock.
    fn touch(&self, key: RecipeKey, clock: &AtomicU64) -> Option<Arc<WeightArtifacts>> {
        self.map.get(&key).map(|entry| {
            entry
                .last_used
                .store(clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            Arc::clone(&entry.arts)
        })
    }

    /// Inserts (or returns the racing winner for) `key`, then evicts
    /// least-recently-served entries down to capacity. Returns the kept
    /// artifacts and how many entries eviction dropped.
    fn insert(
        &mut self,
        key: RecipeKey,
        built: Arc<WeightArtifacts>,
        clock: &AtomicU64,
    ) -> (Arc<WeightArtifacts>, u64) {
        let stamp = clock.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = self
            .map
            .entry(key)
            .and_modify(|entry| entry.last_used.store(stamp, Ordering::Relaxed))
            .or_insert_with(|| CacheEntry {
                arts: built,
                last_used: AtomicU64::new(stamp),
            });
        let kept = Arc::clone(&entry.arts);
        let evicted = self.evict_to_capacity();
        (kept, evicted)
    }

    /// Drops least-recently-served entries until the cache fits its
    /// capacity bound (never the entry with the freshest stamp); returns
    /// how many entries were dropped.
    fn evict_to_capacity(&mut self) -> u64 {
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(&k, _)| k)
                .expect("non-empty over-capacity cache");
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// A snapshot of one [`PreparedDataset`]'s lifetime artifact-cache
/// counters ([`PreparedDataset::cache_stats`]): how many recipe requests
/// were served from the cache (`hits`), how many had to build (`misses` —
/// including [`SamplerStrategy::Auto`]'s uncached one-shot CDF builds),
/// and how many cached recipes the LRU bound dropped (`evictions`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Recipe requests served straight from the cache.
    pub hits: u64,
    /// Recipe requests that paid an artifact build.
    pub misses: u64,
    /// Cached recipes dropped by the LRU capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total recipe requests observed (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A per-query observability probe: interior-mutable counters a
/// [`DataView`] increments as the selectors it serves request sampling
/// artifacts. The session attaches one per execution
/// ([`DataView::with_probe`]) and surfaces the counts on
/// [`QueryOutcome`](crate::session::QueryOutcome) — the per-query face of
/// the dataset-lifetime [`CacheStats`].
#[derive(Debug, Default)]
pub struct QueryProbe {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryProbe {
    /// A fresh probe with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, hit: bool) {
        let counter = if hit { &self.hits } else { &self.misses };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Artifact requests this query served from a prepared cache.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Artifact requests this query paid a fresh build for (every cold
    /// view request counts here — there is no cache to hit).
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The `Arc`-shared corpus a [`PreparedDataset`] amortizes over: flat or
/// segmented.
enum PreparedCorpus {
    Flat(Arc<ScoredDataset>),
    Segmented(Arc<SegmentedDataset>),
}

/// An `Arc`-shared corpus (flat [`ScoredDataset`] or
/// [`SegmentedDataset`]) plus its lazily built, bounded keyed
/// sampling-artifact cache. `Send + Sync`; clone the surrounding `Arc` to
/// share across sessions and threads. Warm lookups take only the shared
/// read lock (see the [module docs](self)), so concurrent serving never
/// serializes on the cache.
pub struct PreparedDataset {
    corpus: PreparedCorpus,
    cache: RwLock<ArtifactCache>,
    /// Monotone recency clock for the LRU stamps — outside the cache lock
    /// so hits can stamp recency under the *read* lock.
    clock: AtomicU64,
    /// Lifetime cache counters ([`cache_stats`](Self::cache_stats)).
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Worker-pool configuration used for artifact construction — stored
    /// copy-on-set in two atomics so warm queries read it without any
    /// lock ([`prepare_with`](PreparedDataset::prepare_with) adopts a
    /// caller's pool for later artifact builds too). The pair is not
    /// updated atomically *together*, but each field is independently
    /// valid and results are bit-identical at every setting, so a torn
    /// read can only change wall time, never output.
    rt_parallelism: AtomicUsize,
    rt_batch_size: AtomicUsize,
}

impl std::fmt::Debug for PreparedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedDataset")
            .field("records", &self.len())
            .field("cached_recipes", &self.cached_recipes())
            .finish()
    }
}

impl PreparedDataset {
    /// Prepares an owned dataset.
    pub fn new(data: ScoredDataset) -> Self {
        Self::from_arc(Arc::new(data))
    }

    /// Prepares an already-shared dataset without copying it.
    pub fn from_arc(data: Arc<ScoredDataset>) -> Self {
        Self::from_corpus(PreparedCorpus::Flat(data))
    }

    /// Prepares an owned segmented corpus: every artifact this dataset
    /// builds — per-segment rank indexes, weights, samplers — is
    /// chunk-resident and constructed segment-parallel, and queries
    /// produce bit-identical [`QueryOutcome`](crate::session::QueryOutcome)s
    /// to a flat preparation of the concatenated scores (under the
    /// default [`SamplerStrategy::Alias`]).
    pub fn from_segmented(seg: SegmentedDataset) -> Self {
        Self::from_segmented_arc(Arc::new(seg))
    }

    /// Prepares an already-shared segmented corpus without copying it.
    pub fn from_segmented_arc(seg: Arc<SegmentedDataset>) -> Self {
        Self::from_corpus(PreparedCorpus::Segmented(seg))
    }

    fn from_corpus(corpus: PreparedCorpus) -> Self {
        let rt = RuntimeConfig::sequential();
        Self {
            corpus,
            cache: RwLock::new(ArtifactCache {
                map: HashMap::new(),
                capacity: DEFAULT_CACHE_CAPACITY,
                auto_seen: HashSet::new(),
            }),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rt_parallelism: AtomicUsize::new(rt.parallelism),
            rt_batch_size: AtomicUsize::new(rt.batch_size),
        }
    }

    /// Validates raw proxy scores and prepares the resulting dataset.
    ///
    /// # Errors
    /// As [`ScoredDataset::new`].
    pub fn from_scores(scores: Vec<f64>) -> Result<Self, SupgError> {
        Ok(Self::new(ScoredDataset::new(scores)?))
    }

    /// Sets the worker-pool configuration used when this dataset builds
    /// artifacts (rank index, weights, alias feeds). Results are
    /// bit-identical at any setting; only cold-build wall time changes.
    pub fn with_runtime(self, runtime: RuntimeConfig) -> Self {
        self.set_runtime(&runtime);
        self
    }

    /// The configured artifact-construction runtime — a lock-free atomic
    /// read (the config is read on every artifact request, so warm
    /// queries must not serialize on it).
    pub fn runtime(&self) -> RuntimeConfig {
        RuntimeConfig {
            parallelism: self.rt_parallelism.load(Ordering::Relaxed),
            batch_size: self.rt_batch_size.load(Ordering::Relaxed),
        }
    }

    /// Copy-on-set store of the artifact-construction runtime.
    fn set_runtime(&self, rt: &RuntimeConfig) {
        self.rt_parallelism.store(rt.parallelism, Ordering::Relaxed);
        self.rt_batch_size.store(rt.batch_size, Ordering::Relaxed);
    }

    /// Builds the corpus's rank structure on the configured worker pool
    /// (no-op when already built), so the first query pays no sort: the
    /// global rank index for flat corpora, every per-segment index —
    /// constructed fully in parallel, one pool job per segment, with no
    /// final merge — for segmented ones. Returns `self` for chaining.
    pub fn prepare(&self) -> &Self {
        let rt = self.runtime();
        match &self.corpus {
            PreparedCorpus::Flat(data) => {
                data.prepare_rank_index(&rt);
            }
            PreparedCorpus::Segmented(seg) => {
                seg.prepare(&rt);
            }
        }
        self
    }

    /// [`prepare`](Self::prepare) with an explicit pool configuration —
    /// what the query engine and experiment harness call with their own
    /// `RuntimeConfig`. The pool is **adopted** as this dataset's
    /// artifact-construction runtime, so the weight/alias builds that
    /// follow (first query, [`warm`](Self::warm)) run on the same workers
    /// (results stay bit-identical either way; only wall time changes).
    pub fn prepare_with(&self, rt: &RuntimeConfig) -> &Self {
        self.set_runtime(rt);
        self.prepare()
    }

    /// The underlying corpus, as the layout-polymorphic [`Corpus`] view.
    pub fn corpus(&self) -> Corpus<'_> {
        match &self.corpus {
            PreparedCorpus::Flat(data) => Corpus::Flat(data),
            PreparedCorpus::Segmented(seg) => Corpus::Segmented(seg),
        }
    }

    /// The underlying scored dataset of a **flat** preparation.
    ///
    /// # Panics
    /// Panics for segmented corpora, which never hold a flat dataset —
    /// use [`corpus`](Self::corpus), which serves both layouts.
    pub fn data(&self) -> &ScoredDataset {
        match &self.corpus {
            PreparedCorpus::Flat(data) => data,
            PreparedCorpus::Segmented(_) => {
                panic!("PreparedDataset::data: segmented corpus has no flat dataset")
            }
        }
    }

    /// A new shared handle to the underlying dataset of a **flat**
    /// preparation.
    ///
    /// # Panics
    /// As [`data`](Self::data) for segmented corpora.
    pub fn share_data(&self) -> Arc<ScoredDataset> {
        match &self.corpus {
            PreparedCorpus::Flat(data) => Arc::clone(data),
            PreparedCorpus::Segmented(_) => {
                panic!("PreparedDataset::share_data: segmented corpus has no flat dataset")
            }
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        match &self.corpus {
            PreparedCorpus::Flat(data) => data.len(),
            PreparedCorpus::Segmented(seg) => seg.len(),
        }
    }

    /// True when the corpus has no records (construction forbids this,
    /// so this is always false; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache-key layout component: 0 for flat corpora, the segment
    /// size for segmented ones.
    fn layout_key(&self) -> u64 {
        match &self.corpus {
            PreparedCorpus::Flat(_) => 0,
            PreparedCorpus::Segmented(seg) => seg.segment_size() as u64,
        }
    }

    /// Builds one recipe's artifacts over whichever corpus layout this
    /// dataset holds (the one place layout dispatch happens on the build
    /// path).
    fn build_arts(
        &self,
        exponent: f64,
        uniform_mix: f64,
        cdf: bool,
        rt: &RuntimeConfig,
    ) -> WeightArtifacts {
        match (&self.corpus, cdf) {
            (PreparedCorpus::Flat(d), false) => {
                WeightArtifacts::build_with(d.scores(), exponent, uniform_mix, rt)
            }
            (PreparedCorpus::Flat(d), true) => {
                WeightArtifacts::build_cdf_with(d.scores(), exponent, uniform_mix, rt)
            }
            (PreparedCorpus::Segmented(s), false) => {
                WeightArtifacts::build_segmented_with(s, exponent, uniform_mix, rt)
            }
            (PreparedCorpus::Segmented(s), true) => {
                WeightArtifacts::build_segmented_cdf_with(s, exponent, uniform_mix, rt)
            }
        }
    }

    /// The alias-backed sampling artifacts for a weight recipe — built on
    /// first use, O(1) `Arc` clone afterwards. Construction happens
    /// outside the cache lock; two threads racing on a cold key may both
    /// build, but exactly one result is kept and handed to everyone (the
    /// artifacts are pure functions of `(scores, recipe)`, so which build
    /// wins is unobservable). Serving a recipe marks it recently used;
    /// when the cache is over [`cache_capacity`](Self::cache_capacity),
    /// the least-recently-served recipe is evicted.
    pub fn artifacts(&self, exponent: f64, uniform_mix: f64) -> Arc<WeightArtifacts> {
        self.artifacts_with(exponent, uniform_mix, SamplerStrategy::Alias)
    }

    /// The sampling artifacts for a weight recipe under a
    /// [`SamplerStrategy`]:
    ///
    /// * [`Alias`](SamplerStrategy::Alias) / [`Cdf`](SamplerStrategy::Cdf)
    ///   — cached under distinct keys, built (on the configured pool) on
    ///   first use.
    /// * [`Auto`](SamplerStrategy::Auto) — serves the cached alias
    ///   artifacts when the recipe is warm; otherwise the *first* request
    ///   gets a fresh, uncached one-shot CDF build (the cheap cold path),
    ///   and the second request for the same recipe promotes it to a
    ///   cached alias table.
    pub fn artifacts_with(
        &self,
        exponent: f64,
        uniform_mix: f64,
        strategy: SamplerStrategy,
    ) -> Arc<WeightArtifacts> {
        self.artifacts_probed(exponent, uniform_mix, strategy).0
    }

    /// [`artifacts_with`](Self::artifacts_with) plus whether the request
    /// was a cache hit — what [`DataView`] feeds its [`QueryProbe`].
    pub(crate) fn artifacts_probed(
        &self,
        exponent: f64,
        uniform_mix: f64,
        strategy: SamplerStrategy,
    ) -> (Arc<WeightArtifacts>, bool) {
        let rt = self.runtime();
        let layout = self.layout_key();
        match strategy {
            SamplerStrategy::Alias => self.cached_artifacts(
                RecipeKey::alias(exponent, uniform_mix).with_layout(layout),
                || self.build_arts(exponent, uniform_mix, false, &rt),
            ),
            SamplerStrategy::Cdf => self.cached_artifacts(
                RecipeKey::cdf(exponent, uniform_mix).with_layout(layout),
                || self.build_arts(exponent, uniform_mix, true, &rt),
            ),
            SamplerStrategy::Auto => {
                let key = RecipeKey::alias(exponent, uniform_mix).with_layout(layout);
                // Warm recipe: the shared-read-lock hot path.
                if let Some(hit) = self.read_cached(key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (hit, true);
                }
                // Cold recipe: one write-lock critical section for the
                // promotion bookkeeping. A racer may have inserted the
                // artifacts since the read — serve those as a hit.
                enum Cold {
                    Raced(Arc<WeightArtifacts>),
                    Recurring,
                    FirstSight,
                }
                let state = {
                    let mut cache = self.cache.write().expect("artifact cache poisoned");
                    if let Some(hit) = cache.touch(key, &self.clock) {
                        Cold::Raced(hit)
                    } else {
                        // Bound the promotion memory like the cache
                        // itself: losing it only costs one extra
                        // one-shot CDF build.
                        if cache.auto_seen.len() > cache.capacity.saturating_mul(4) {
                            cache.auto_seen.clear();
                        }
                        if cache.auto_seen.insert(key) {
                            Cold::FirstSight
                        } else {
                            Cold::Recurring
                        }
                    }
                };
                match state {
                    Cold::Raced(hit) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        (hit, true)
                    }
                    Cold::Recurring => {
                        // Second request: the recipe is recurring — pay
                        // the alias build once and serve it from the
                        // cache on.
                        let built = self.cached_artifacts(key, || {
                            self.build_arts(exponent, uniform_mix, false, &rt)
                        });
                        self.cache
                            .write()
                            .expect("artifact cache poisoned")
                            .auto_seen
                            .remove(&key);
                        built
                    }
                    Cold::FirstSight => {
                        // First sight: cheapest possible one-shot setup,
                        // not cached (the point is not to pay for
                        // artifacts a one-shot query never reuses).
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        let built = Arc::new(self.build_arts(exponent, uniform_mix, true, &rt));
                        (built, false)
                    }
                }
            }
        }
    }

    /// The read-lock-only warm lookup (recency stamped via the atomic
    /// clock; the map itself is untouched).
    fn read_cached(&self, key: RecipeKey) -> Option<Arc<WeightArtifacts>> {
        self.cache
            .read()
            .expect("artifact cache poisoned")
            .touch(key, &self.clock)
    }

    /// Where the weight recipe `(exponent, uniform_mix)` stands in this
    /// dataset's artifact cache — the planner's cache-state signal. A
    /// pure peek under the shared read lock: no build, no hit/miss
    /// accounting, no promotion-memory side effects. An alias entry
    /// shadows a CDF entry (the O(1)-draw steady state wins).
    pub fn recipe_state(&self, exponent: f64, uniform_mix: f64) -> RecipeState {
        let layout = self.layout_key();
        let alias_key = RecipeKey::alias(exponent, uniform_mix).with_layout(layout);
        let cdf_key = RecipeKey::cdf(exponent, uniform_mix).with_layout(layout);
        let cache = self.cache.read().expect("artifact cache poisoned");
        if cache.map.contains_key(&alias_key) {
            RecipeState::WarmAlias
        } else if cache.map.contains_key(&cdf_key) {
            RecipeState::WarmCdf
        } else if cache.auto_seen.contains(&alias_key) {
            RecipeState::SeenOnce
        } else {
            RecipeState::Cold
        }
    }

    /// Cache lookup / build-outside-the-lock / insert for one key.
    /// Returns the kept artifacts and whether the request hit the cache.
    fn cached_artifacts(
        &self,
        key: RecipeKey,
        build: impl FnOnce() -> WeightArtifacts,
    ) -> (Arc<WeightArtifacts>, bool) {
        if let Some(hit) = self.read_cached(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        let (kept, evicted) =
            self.cache
                .write()
                .expect("artifact cache poisoned")
                .insert(key, built, &self.clock);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        (kept, false)
    }

    /// Pre-builds everything a selector configuration will need — the
    /// rank index and the recipe's sampling artifacts — so the first
    /// query pays no O(n log n) construction at all. An
    /// [`Auto`](SamplerStrategy::Auto) configuration warms the alias
    /// table (warming declares the recipe recurring), an explicit
    /// [`Cdf`](SamplerStrategy::Cdf) configuration warms the CDF
    /// artifacts.
    pub fn warm(&self, cfg: &SelectorConfig) -> Arc<WeightArtifacts> {
        self.prepare();
        let strategy = match cfg.sampler {
            SamplerStrategy::Cdf => SamplerStrategy::Cdf,
            SamplerStrategy::Alias | SamplerStrategy::Auto => SamplerStrategy::Alias,
        };
        self.artifacts_with(cfg.weight_exponent, cfg.uniform_mix, strategy)
    }

    /// Number of cached weight recipes.
    pub fn cached_recipes(&self) -> usize {
        self.cache
            .read()
            .expect("artifact cache poisoned")
            .map
            .len()
    }

    /// The artifact-cache capacity bound.
    pub fn cache_capacity(&self) -> usize {
        self.cache.read().expect("artifact cache poisoned").capacity
    }

    /// Sets the artifact-cache capacity (clamped to ≥ 1), evicting
    /// least-recently-served recipes immediately if the cache is over the
    /// new bound.
    pub fn set_cache_capacity(&self, capacity: usize) {
        let mut cache = self.cache.write().expect("artifact cache poisoned");
        cache.capacity = capacity.max(1);
        let evicted = cache.evict_to_capacity();
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// A point-in-time snapshot of the artifact-cache counters,
    /// accumulated over the dataset's lifetime across all threads.
    ///
    /// Hits are requests served from the cache under the shared read
    /// lock; misses paid an artifact build (including `Auto`'s uncached
    /// first-sight CDF builds); evictions count recipes dropped to hold
    /// the capacity bound. Counters use relaxed atomics — the snapshot
    /// is consistent-enough for monitoring, not a linearizable read.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The borrowed view a selector runs against: the corpus (flat or
/// segmented) plus, when the session was given a [`PreparedDataset`],
/// the shared artifact cache. Cold views build artifacts fresh per call —
/// exactly the historical per-query behavior — so every selector has one
/// code path and prepared vs. cold differ only in amortization, never in
/// results.
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    corpus: Corpus<'a>,
    prepared: Option<&'a PreparedDataset>,
    probe: Option<&'a QueryProbe>,
}

impl<'a> DataView<'a> {
    /// A view with no artifact cache (per-query construction).
    pub fn cold(data: &'a ScoredDataset) -> Self {
        Self {
            corpus: Corpus::Flat(data),
            prepared: None,
            probe: None,
        }
    }

    /// A cold view over a segmented corpus (per-query construction of the
    /// chunk-resident artifacts).
    pub fn cold_segmented(seg: &'a SegmentedDataset) -> Self {
        Self {
            corpus: Corpus::Segmented(seg),
            prepared: None,
            probe: None,
        }
    }

    /// A view backed by a prepared dataset's artifact cache.
    pub fn prepared(prepared: &'a PreparedDataset) -> Self {
        Self {
            corpus: prepared.corpus(),
            prepared: Some(prepared),
            probe: None,
        }
    }

    /// Attaches a per-query [`QueryProbe`]: every artifact request made
    /// through this view records a hit or miss on it. Cold views record
    /// every request as a miss (each one pays a fresh build).
    pub fn with_probe(mut self, probe: &'a QueryProbe) -> Self {
        self.probe = Some(probe);
        self
    }

    /// The corpus under view. (`Corpus` is `Copy` and serves scores,
    /// global ranks and top-k identically for flat and segmented
    /// layouts, so selectors are layout-blind.)
    pub fn data(&self) -> Corpus<'a> {
        self.corpus
    }

    /// True when backed by a prepared artifact cache.
    pub fn is_prepared(&self) -> bool {
        self.prepared.is_some()
    }

    /// The **flat** dataset's global rank index (shared with every other
    /// session over the same prepared corpus; lazily built on cold
    /// views).
    ///
    /// # Panics
    /// Panics for segmented corpora, which keep per-segment indexes —
    /// use [`rank_source`](Self::rank_source), which serves both layouts.
    pub fn rank_index(&self) -> &'a RankIndex {
        match self.corpus {
            Corpus::Flat(data) => data.rank_index(),
            Corpus::Segmented(_) => {
                panic!("DataView::rank_index: segmented corpus has no global rank index")
            }
        }
    }

    /// The rank structure query results are served from, for either
    /// layout — what [`ResultView::over`](crate::executor::ResultView)
    /// consumes.
    pub fn rank_source(&self) -> crate::executor::RankSource<'a> {
        match self.corpus {
            Corpus::Flat(data) => crate::executor::RankSource::Flat(data.rank_index()),
            Corpus::Segmented(seg) => crate::executor::RankSource::Segmented(seg),
        }
    }

    /// The alias-backed sampling artifacts for a weight recipe: cache hit
    /// when prepared, fresh O(n) build when cold.
    pub fn artifacts(&self, exponent: f64, uniform_mix: f64) -> Arc<WeightArtifacts> {
        self.artifacts_with(exponent, uniform_mix, SamplerStrategy::Alias)
    }

    /// The sampling artifacts for a weight recipe under a
    /// [`SamplerStrategy`]. Prepared views delegate to
    /// [`PreparedDataset::artifacts_with`]; cold views build fresh per
    /// call — [`Auto`](SamplerStrategy::Auto) resolves to the cheap
    /// one-shot CDF build there, because a cold view by definition has no
    /// cache to amortize an alias table into.
    pub fn artifacts_with(
        &self,
        exponent: f64,
        uniform_mix: f64,
        strategy: SamplerStrategy,
    ) -> Arc<WeightArtifacts> {
        let (arts, hit) = match self.prepared {
            Some(p) => p.artifacts_probed(exponent, uniform_mix, strategy),
            None => {
                let rt = RuntimeConfig::sequential();
                (
                    Arc::new(match (self.corpus, strategy) {
                        (Corpus::Flat(d), SamplerStrategy::Alias) => {
                            WeightArtifacts::build(d.scores(), exponent, uniform_mix)
                        }
                        (Corpus::Flat(d), _) => {
                            WeightArtifacts::build_cdf(d.scores(), exponent, uniform_mix)
                        }
                        (Corpus::Segmented(s), SamplerStrategy::Alias) => {
                            WeightArtifacts::build_segmented_with(s, exponent, uniform_mix, &rt)
                        }
                        (Corpus::Segmented(s), _) => {
                            WeightArtifacts::build_segmented_cdf_with(s, exponent, uniform_mix, &rt)
                        }
                    }),
                    false,
                )
            }
        };
        if let Some(probe) = self.probe {
            probe.record(hit);
        }
        arts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> ScoredDataset {
        ScoredDataset::new((0..100).map(|i| i as f64 / 100.0).collect()).unwrap()
    }

    #[test]
    fn artifacts_are_cached_per_recipe() {
        let p = PreparedDataset::new(dataset());
        assert_eq!(p.cached_recipes(), 0);
        let a = p.artifacts(0.5, 0.1);
        let b = p.artifacts(0.5, 0.1);
        assert!(Arc::ptr_eq(&a, &b), "same recipe must hit the cache");
        assert_eq!(p.cached_recipes(), 1);
        let c = p.artifacts(1.0, 0.1);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(p.cached_recipes(), 2);
    }

    #[test]
    fn warm_prebuilds_the_configured_recipe() {
        let p = PreparedDataset::new(dataset());
        let cfg = SelectorConfig::default();
        let warmed = p.warm(&cfg);
        assert_eq!(p.cached_recipes(), 1);
        let served = p.artifacts(cfg.weight_exponent, cfg.uniform_mix);
        assert!(Arc::ptr_eq(&warmed, &served));
    }

    #[test]
    fn cold_and_prepared_views_build_identical_artifacts() {
        let data = dataset();
        let p = PreparedDataset::new(data.clone());
        let cold = DataView::cold(&data).artifacts(0.5, 0.1);
        let prepared = DataView::prepared(&p).artifacts(0.5, 0.1);
        assert!(!DataView::cold(&data).is_prepared());
        assert!(DataView::prepared(&p).is_prepared());
        assert_eq!(cold.weights().probs(), prepared.weights().probs());
        for i in 0..data.len() {
            assert_eq!(
                cold.reweight_factor(i).to_bits(),
                prepared.reweight_factor(i).to_bits()
            );
        }
    }

    #[test]
    fn pooled_artifact_build_is_bit_identical_to_serial() {
        // Big enough to cross the parallel threshold.
        let scores: Vec<f64> = (0..40_000)
            .map(|i| ((i * 13) % 997) as f64 / 997.0)
            .collect();
        let serial = WeightArtifacts::build(&scores, 0.5, 0.1);
        for parallelism in [2, 4, 8] {
            let rt = RuntimeConfig::default().with_parallelism(parallelism);
            let pooled = WeightArtifacts::build_with(&scores, 0.5, 0.1, &rt);
            for i in (0..scores.len()).step_by(997) {
                assert_eq!(
                    serial.weights().prob(i).to_bits(),
                    pooled.weights().prob(i).to_bits(),
                    "prob i={i} parallelism={parallelism}"
                );
                assert_eq!(
                    serial.sampler().prob(i).to_bits(),
                    pooled.sampler().prob(i).to_bits(),
                    "sampler prob i={i} parallelism={parallelism}"
                );
            }
        }
    }

    #[test]
    fn concurrent_sessions_share_one_build() {
        let p = Arc::new(PreparedDataset::new(dataset()));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || p.artifacts(0.5, 0.1))
            })
            .collect();
        let arts: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All threads end up holding the same cached artifact object.
        let first = &arts[0];
        assert!(arts.iter().all(|a| Arc::ptr_eq(a, first)));
        assert_eq!(p.cached_recipes(), 1);
    }

    #[test]
    fn cache_evicts_least_recently_served_recipe() {
        let p = PreparedDataset::new(dataset());
        p.set_cache_capacity(2);
        assert_eq!(p.cache_capacity(), 2);
        let a = p.artifacts(0.1, 0.0);
        let _b = p.artifacts(0.2, 0.0);
        // Touch the oldest so the *middle* recipe becomes LRU.
        let a2 = p.artifacts(0.1, 0.0);
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = p.artifacts(0.3, 0.0);
        assert_eq!(p.cached_recipes(), 2);
        // Recipe 0.2 was evicted: requesting it rebuilds a fresh object;
        // recipe 0.1 is still the cached original.
        assert!(Arc::ptr_eq(&a, &p.artifacts(0.1, 0.0)));
        assert_eq!(p.cached_recipes(), 2);

        // Shrinking capacity evicts immediately.
        p.set_cache_capacity(1);
        assert_eq!(p.cached_recipes(), 1);
        // Capacity clamps to ≥ 1.
        p.set_cache_capacity(0);
        assert_eq!(p.cache_capacity(), 1);
    }

    #[test]
    fn cache_stats_count_hits_misses_and_evictions() {
        let p = PreparedDataset::new(dataset());
        assert_eq!(p.cache_stats(), CacheStats::default());
        let _a = p.artifacts(0.1, 0.0); // miss (build)
        let _a2 = p.artifacts(0.1, 0.0); // hit
        let _a3 = p.artifacts(0.1, 0.0); // hit
        let _b = p.artifacts(0.2, 0.0); // miss
        let stats = p.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 2, 0));
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);

        // Shrinking capacity counts its evictions.
        p.set_cache_capacity(1);
        assert_eq!(p.cache_stats().evictions, 1);

        // Auto: first sight is an uncached miss, the recurrence promotes
        // (a miss that builds the cached alias table), then hits.
        let _ = p.artifacts_with(0.3, 0.0, SamplerStrategy::Auto);
        let before = p.cache_stats();
        let _ = p.artifacts_with(0.3, 0.0, SamplerStrategy::Auto);
        let _ = p.artifacts_with(0.3, 0.0, SamplerStrategy::Auto);
        let after = p.cache_stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
    }

    #[test]
    fn query_probe_counts_view_requests() {
        let data = dataset();
        let p = PreparedDataset::new(data.clone());

        let probe = QueryProbe::new();
        let view = DataView::prepared(&p).with_probe(&probe);
        let _ = view.artifacts(0.5, 0.1); // miss
        let _ = view.artifacts(0.5, 0.1); // hit
        assert_eq!((probe.cache_hits(), probe.cache_misses()), (1, 1));

        // Cold views record every request as a miss.
        let cold_probe = QueryProbe::new();
        let cold = DataView::cold(&data).with_probe(&cold_probe);
        let _ = cold.artifacts(0.5, 0.1);
        let _ = cold.artifacts(0.5, 0.1);
        assert_eq!((cold_probe.cache_hits(), cold_probe.cache_misses()), (0, 2));
    }

    #[test]
    fn prepare_builds_the_shared_rank_index() {
        let data = Arc::new(dataset());
        let p = PreparedDataset::from_arc(Arc::clone(&data))
            .with_runtime(RuntimeConfig::default().with_parallelism(4));
        p.prepare();
        // The index lives on the shared dataset, not a private copy.
        let idx = p.data().rank_index();
        assert_eq!(idx.len(), 100);
        assert!(std::ptr::eq(idx, data.rank_index()));
        assert_eq!(p.runtime().parallelism, 4);
    }

    #[test]
    fn segmented_artifacts_match_flat_bitwise() {
        let scores: Vec<f64> = (0..2_000)
            .map(|i| ((i * 13) % 997) as f64 / 997.0)
            .collect();
        let flat = WeightArtifacts::build(&scores, 0.5, 0.1);
        let seg = SegmentedDataset::new(scores.clone(), 64).unwrap();
        for parallelism in [1, 4, 8] {
            let rt = RuntimeConfig::default().with_parallelism(parallelism);
            let arts = WeightArtifacts::build_segmented_with(&seg, 0.5, 0.1, &rt);
            assert!(arts.alias_sampler().is_none(), "segmented table, not flat");
            assert!(!arts.draws_via_cdf());
            for i in 0..scores.len() {
                assert_eq!(
                    flat.prob(i).to_bits(),
                    arts.prob(i).to_bits(),
                    "prob i={i} parallelism={parallelism}"
                );
                assert_eq!(
                    flat.reweight_factor(i).to_bits(),
                    arts.reweight_factor(i).to_bits(),
                    "reweight i={i} parallelism={parallelism}"
                );
                assert_eq!(
                    flat.sampler().prob(i).to_bits(),
                    arts.sampler().prob(i).to_bits(),
                    "sampler prob i={i} parallelism={parallelism}"
                );
            }
        }
    }

    #[test]
    fn segmented_cdf_build_is_parallelism_deterministic() {
        let scores: Vec<f64> = (0..1_500)
            .map(|i| ((i * 31) % 101) as f64 / 101.0)
            .collect();
        let seg = SegmentedDataset::new(scores, 100).unwrap();
        let serial =
            WeightArtifacts::build_segmented_cdf_with(&seg, 0.5, 0.1, &RuntimeConfig::sequential());
        assert!(serial.draws_via_cdf());
        for parallelism in [2, 4, 8] {
            let rt = RuntimeConfig::default().with_parallelism(parallelism);
            let pooled = WeightArtifacts::build_segmented_cdf_with(&seg, 0.5, 0.1, &rt);
            for i in 0..seg.len() {
                assert_eq!(
                    serial.sampler().prob(i).to_bits(),
                    pooled.sampler().prob(i).to_bits(),
                    "cdf prob i={i} parallelism={parallelism}"
                );
            }
        }
    }

    #[test]
    fn segmented_preparation_caches_and_serves() {
        let scores: Vec<f64> = (0..500).map(|i| (i % 97) as f64 / 97.0).collect();
        let p = PreparedDataset::from_segmented(SegmentedDataset::new(scores, 64).unwrap());
        assert_eq!(p.len(), 500);
        assert!(!p.is_empty());
        p.prepare();
        let a = p.artifacts(0.5, 0.1);
        let b = p.artifacts(0.5, 0.1);
        assert!(Arc::ptr_eq(&a, &b), "same recipe must hit the cache");
        assert_eq!(p.cached_recipes(), 1);
        // The corpus view serves global ranks.
        let corpus = p.corpus();
        assert_eq!(corpus.len(), 500);
        assert!(matches!(corpus, Corpus::Segmented(_)));
    }

    #[test]
    #[should_panic(expected = "segmented corpus has no flat dataset")]
    fn segmented_preparation_rejects_flat_data_accessor() {
        let scores: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
        let p = PreparedDataset::from_segmented(SegmentedDataset::new(scores, 4).unwrap());
        let _ = p.data();
    }

    #[test]
    fn share_data_aliases_the_dataset() {
        let arc = Arc::new(dataset());
        let p = PreparedDataset::from_arc(Arc::clone(&arc));
        assert!(Arc::ptr_eq(&arc, &p.share_data()));
        assert_eq!(p.len(), 100);
        assert!(!p.is_empty());
    }
}
