//! Measured-cost adaptive planning: calibrate once, snapshot per query,
//! resolve a [`Plan`], execute it.
//!
//! The paper's §6.5 cost model shows where SUPG's time and money go —
//! oracle calls ≫ proxy ≫ query processing — but the execution knobs
//! that steer those costs (`RuntimeConfig` parallelism/batching, the
//! [`SamplerStrategy`] backend, the chunk counts of rank/alias/segment
//! builds) were hand-tuned defaults. This module replaces guessing with
//! a *measure-then-pick* loop:
//!
//! 1. **Calibrate once per process** ([`CalibrationProfile::measured`],
//!    cached in a `OnceLock`): time the packed-key sort serial vs.
//!    chunked at the effective core count, and the alias-feed / CDF-scan
//!    build kernels (via [`supg_sampling::calibrate`]).
//! 2. **Snapshot per query** ([`PlanSignals`]): dataset size and layout
//!    (flat vs. segmented), the artifact-cache state for the query's
//!    weight recipe ([`RecipeState`]), the caller's pinned knobs, and an
//!    EWMA of observed per-call oracle latency kept by the [`Planner`]
//!    across queries.
//! 3. **Resolve** ([`Plan::resolve`]): a *pure function* of the snapshot
//!    producing `Plan { parallelism, batch_size, sampler, chunks,
//!    rationale }`. Purity is what makes planning testable — the same
//!    snapshot always yields the same plan (pinned by proptests in
//!    `crates/core/tests/planner_parity.rs`).
//!
//! # The serial floor
//!
//! The planner **never selects a configuration slower than serial**:
//! chunked builds are only chosen when the calibration *measured* them
//! faster than the serial build on this machine ([`planned_chunks`]).
//! On a single-core box the chunk count is always 1, which is what fixes
//! the `cold_build.speedup = 0.79` regression the hand-tuned "8 workers"
//! default produced — there is no configuration the planner can pick
//! that loses to the serial baseline by construction.
//!
//! # Determinism
//!
//! A plan only ever changes *performance* knobs whose bit-neutrality is
//! already pinned elsewhere: parallelism and batch size never change a
//! [`QueryOutcome`] (the [`crate::runtime`] contract), and the resolved
//! sampler is a concrete backend, so a planned query is bit-identical to
//! a hand-tuned query run at the same resolved configuration. The only
//! nondeterministic inputs (the clock behind the calibration and the
//! latency EWMA) steer *which* configuration runs, never what it
//! computes.
//!
//! # Reading a plan
//!
//! Every planned [`QueryOutcome`] carries its plan as a debug report:
//! each [`Decision`] pairs the choice with the measured input that drove
//! it. [`Plan::report`] renders the rationale as one line per decision.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::prepared::{RecipeState, SamplerStrategy};
use crate::rank::RankIndex;
use crate::runtime::{self, RuntimeConfig, DEFAULT_BATCH_SIZE, MIN_PARALLEL_INPUT};
use crate::session::QueryOutcome;

/// Input size of the one-time calibration probe — large enough to sit
/// above [`MIN_PARALLEL_INPUT`] (so the chunked arm exercises the real
/// dispatch path), small enough that calibration costs milliseconds.
const PROBE_KEYS: usize = MIN_PARALLEL_INPUT * 2;

/// Per-call latency (ns, EWMA) above which an oracle is treated as
/// latency-bound: workers mostly wait, so oversubscribing the core count
/// and shrinking batches improves load balance without contention.
const SLOW_ORACLE_NS: f64 = 100_000.0;

/// Worker multiplier for latency-bound oracles.
const OVERSUBSCRIBE: usize = 4;

/// Batch size for latency-bound oracles (fine batches balance better
/// when each call is expensive).
const SLOW_ORACLE_BATCH: usize = 16;

/// Batch size for throughput-bound oracles (large batches amortize
/// dispatch when each call is cheap).
const FAST_ORACLE_BATCH: usize = 256;

/// EWMA smoothing factor for the observed oracle latency.
const EWMA_ALPHA: f64 = 0.3;

/// The one-time per-process calibration: measured build-kernel
/// throughputs and the effective core count, cached in a `OnceLock` on
/// first use ([`CalibrationProfile::measured`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationProfile {
    /// Cores the OS actually grants this process — the
    /// [`runtime::effective_cores`] clamp every chunked build respects.
    pub effective_cores: usize,
    /// ns/key of the serial packed-key rank sort at the probe size.
    pub sort_serial_ns_per_key: f64,
    /// ns/key of the chunked sort + merge at `effective_cores` chunks
    /// (equals the serial cost when only one core is available).
    pub sort_chunked_ns_per_key: f64,
    /// ns/element of one alias feed pass (`supg-sampling` kernel).
    pub alias_feed_ns_per_elem: f64,
    /// ns/element of the CDF prefix-sum construction.
    pub cdf_scan_ns_per_elem: f64,
}

impl CalibrationProfile {
    /// The process-wide measured profile. The microbenchmark runs once
    /// on first call (a few milliseconds) and is cached for the process
    /// lifetime; every later call is a static borrow.
    pub fn measured() -> &'static CalibrationProfile {
        static CAL: OnceLock<CalibrationProfile> = OnceLock::new();
        CAL.get_or_init(Self::microbench)
    }

    fn microbench() -> CalibrationProfile {
        let cores = runtime::effective_cores();
        let scores: Vec<f64> = (0..PROBE_KEYS)
            .map(|i| runtime::split_unit(0xCA11_B7A7, i as u64))
            .collect();
        let serial_ns = median_ns(3, || {
            black_box(RankIndex::build_serial(&scores));
        });
        let chunked_ns = if cores > 1 {
            median_ns(3, || {
                black_box(RankIndex::build_chunked(&scores, cores));
            })
        } else {
            serial_ns
        };
        let feeds = supg_sampling::calibrate::measure_feed_throughput(PROBE_KEYS);
        CalibrationProfile {
            effective_cores: cores,
            sort_serial_ns_per_key: serial_ns as f64 / PROBE_KEYS as f64,
            sort_chunked_ns_per_key: chunked_ns as f64 / PROBE_KEYS as f64,
            alias_feed_ns_per_elem: feeds.alias_feed_ns_per_elem,
            cdf_scan_ns_per_elem: feeds.cdf_scan_ns_per_elem,
        }
    }

    /// Measured serial/chunked sort ratio: > 1.0 means chunked builds
    /// actually paid off on this machine.
    pub fn chunked_sort_speedup(&self) -> f64 {
        if self.sort_chunked_ns_per_key <= 0.0 {
            return 1.0;
        }
        self.sort_serial_ns_per_key / self.sort_chunked_ns_per_key
    }

    /// A synthetic profile for tests: `chunked_sort_speedup` and the
    /// core count are set directly, the feed costs to plausible
    /// constants. Lets planner tests exercise multi-core decisions on
    /// any machine without timing anything.
    pub fn synthetic(effective_cores: usize, chunked_sort_speedup: f64) -> Self {
        let serial = 10.0;
        CalibrationProfile {
            effective_cores: effective_cores.max(1),
            sort_serial_ns_per_key: serial,
            sort_chunked_ns_per_key: serial / chunked_sort_speedup.max(f64::MIN_POSITIVE),
            alias_feed_ns_per_elem: 6.0,
            cdf_scan_ns_per_elem: 2.0,
        }
    }
}

/// The build chunk count the serial-floor invariant allows for an
/// `n`-record build under `cal`: the effective core count when the
/// calibration measured chunked sorting faster than serial *and* the
/// input is large enough to dispatch at all — otherwise 1 (serial).
pub fn planned_chunks(n: usize, cal: &CalibrationProfile) -> usize {
    if n >= MIN_PARALLEL_INPUT && cal.effective_cores > 1 && cal.chunked_sort_speedup() >= 1.0 {
        cal.effective_cores
    } else {
        1
    }
}

/// Per-dataset planning policy — how `supg-serve` pins or restricts
/// what the planner may resolve (the "overrides win" knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanPolicy {
    /// Force this sampler backend regardless of what the query asked
    /// for or what the cache state suggests.
    pub pin_sampler: Option<SamplerStrategy>,
    /// Never resolve the CDF backend (applied after pinning — a
    /// guardrail for tenants that require the alias RNG stream).
    pub forbid_cdf: bool,
}

/// Everything a plan is a function of — one immutable snapshot of the
/// measured signals taken just before execution. Two identical
/// snapshots always resolve to the same [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanSignals {
    /// Records in the corpus.
    pub n: usize,
    /// Segment count (0 = flat layout).
    pub segments: usize,
    /// Whether an artifact cache backs this query (prepared/shared
    /// sessions).
    pub prepared: bool,
    /// Cache state of the query's weight recipe (always
    /// [`RecipeState::Cold`] for cold views — there is no cache).
    pub recipe: RecipeState,
    /// The sampler the caller asked for (`Auto` delegates to the
    /// planner; anything else is a caller pin).
    pub requested_sampler: SamplerStrategy,
    /// The runtime the caller pinned, if any (honored verbatim).
    pub pinned_runtime: Option<RuntimeConfig>,
    /// EWMA of observed per-call oracle latency in ns (`None` until the
    /// planner has seen an outcome for this oracle).
    pub oracle_ns_per_call: Option<f64>,
    /// Measured effective core count.
    pub effective_cores: usize,
    /// Measured serial/chunked sort ratio from the calibration.
    pub chunked_sort_speedup: f64,
    /// The serving-layer policy in force.
    pub policy: PlanPolicy,
}

/// One resolved choice and the measured input that drove it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// What was picked, e.g. `"sampler=cdf"`.
    pub choice: String,
    /// Which measured signal made the call, e.g. a throughput or a
    /// cache state.
    pub because: String,
}

/// The resolved execution configuration — what the session actually
/// runs — plus the rationale trail. Attached to every planned
/// [`QueryOutcome`] as a debug report.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Worker-pool width for batched oracle labeling.
    pub parallelism: usize,
    /// Records per batched oracle request.
    pub batch_size: usize,
    /// The concrete sampler backend (never
    /// [`SamplerStrategy::Auto`] — resolution is the planner's job).
    pub sampler: SamplerStrategy,
    /// Chunk count for rank/alias/segment builds (1 = serial; > 1 only
    /// when the calibration measured chunking faster).
    pub chunks: usize,
    /// One [`Decision`] per resolved knob, in resolution order.
    pub rationale: Vec<Decision>,
}

impl Plan {
    /// Resolves a snapshot into a plan. Pure: no clocks, no caches, no
    /// globals — the same `signals` always produce the same plan.
    pub fn resolve(signals: &PlanSignals) -> Plan {
        let mut rationale = Vec::new();
        let sampler = resolve_sampler(signals, &mut rationale);
        let (parallelism, batch_size) = resolve_runtime(signals, &mut rationale);
        let chunks = resolve_chunks(signals, &mut rationale);
        Plan {
            parallelism,
            batch_size,
            sampler,
            chunks,
            rationale,
        }
    }

    /// The plan's oracle-facing knobs as a [`RuntimeConfig`].
    pub fn runtime(&self) -> RuntimeConfig {
        RuntimeConfig::default()
            .with_parallelism(self.parallelism)
            .with_batch_size(self.batch_size)
    }

    /// Renders the rationale as one `choice — because` line per
    /// decision (the human-readable form of the debug report).
    pub fn report(&self) -> String {
        let mut out = String::new();
        for d in &self.rationale {
            out.push_str(&d.choice);
            out.push_str(" — ");
            out.push_str(&d.because);
            out.push('\n');
        }
        out
    }
}

fn resolve_sampler(s: &PlanSignals, rationale: &mut Vec<Decision>) -> SamplerStrategy {
    let mut sampler = if let Some(pin) =
        s.policy.pin_sampler.filter(|p| *p != SamplerStrategy::Auto)
    {
        rationale.push(Decision {
            choice: format!("sampler={}", strategy_name(pin)),
            because: "pinned by server override".to_owned(),
        });
        pin
    } else if s.requested_sampler != SamplerStrategy::Auto {
        rationale.push(Decision {
            choice: format!("sampler={}", strategy_name(s.requested_sampler)),
            because: "pinned by caller".to_owned(),
        });
        s.requested_sampler
    } else if !s.prepared {
        // Cold view: no cache, every build is one-shot. Pay whichever
        // build the calibration measured cheaper.
        rationale.push(Decision {
            choice: "sampler=cdf".to_owned(),
            because: "cold view: one-shot CDF scan is the cheapest measured build".to_owned(),
        });
        SamplerStrategy::Cdf
    } else {
        match s.recipe {
            RecipeState::WarmAlias => {
                rationale.push(Decision {
                    choice: "sampler=alias".to_owned(),
                    because: "alias artifacts cached for this recipe (warm hit)".to_owned(),
                });
                SamplerStrategy::Alias
            }
            RecipeState::WarmCdf => {
                rationale.push(Decision {
                    choice: "sampler=alias".to_owned(),
                    because: "recipe recurring (CDF cached from first sight); promote to alias \
                              — O(1) draws beat per-draw CDF binary search once warm"
                        .to_owned(),
                });
                SamplerStrategy::Alias
            }
            RecipeState::SeenOnce => {
                rationale.push(Decision {
                    choice: "sampler=alias".to_owned(),
                    because: "recipe recurring (Auto saw it once); promote to cached alias"
                        .to_owned(),
                });
                SamplerStrategy::Alias
            }
            RecipeState::Cold => {
                rationale.push(Decision {
                    choice: "sampler=cdf".to_owned(),
                    because: "cold recipe: cache the cheapest measured build first".to_owned(),
                });
                SamplerStrategy::Cdf
            }
        }
    };
    if s.policy.forbid_cdf && sampler == SamplerStrategy::Cdf {
        rationale.push(Decision {
            choice: "sampler=alias".to_owned(),
            because: "CDF forbidden by server policy".to_owned(),
        });
        sampler = SamplerStrategy::Alias;
    }
    sampler
}

fn resolve_runtime(s: &PlanSignals, rationale: &mut Vec<Decision>) -> (usize, usize) {
    if let Some(rt) = s.pinned_runtime {
        rationale.push(Decision {
            choice: format!(
                "parallelism={} batch_size={}",
                rt.parallelism, rt.batch_size
            ),
            because: "runtime pinned by caller".to_owned(),
        });
        return (rt.parallelism.max(1), rt.batch_size.max(1));
    }
    let cores = s.effective_cores.max(1);
    match s.oracle_ns_per_call {
        None => {
            rationale.push(Decision {
                choice: format!("parallelism={cores} batch_size={DEFAULT_BATCH_SIZE}"),
                because: "no oracle latency history; defaults at effective cores".to_owned(),
            });
            (cores, DEFAULT_BATCH_SIZE)
        }
        Some(ns) if ns >= SLOW_ORACLE_NS => {
            let workers = cores.saturating_mul(OVERSUBSCRIBE).max(1);
            rationale.push(Decision {
                choice: format!("parallelism={workers} batch_size={SLOW_ORACLE_BATCH}"),
                because: format!(
                    "oracle EWMA {ns:.0} ns/call ≥ {SLOW_ORACLE_NS:.0} — latency-bound: \
                     oversubscribe {OVERSUBSCRIBE}x, fine batches"
                ),
            });
            (workers, SLOW_ORACLE_BATCH)
        }
        Some(ns) => {
            rationale.push(Decision {
                choice: format!("parallelism={cores} batch_size={FAST_ORACLE_BATCH}"),
                because: format!(
                    "oracle EWMA {ns:.0} ns/call — throughput-bound: one worker per core, \
                     large batches"
                ),
            });
            (cores, FAST_ORACLE_BATCH)
        }
    }
}

fn resolve_chunks(s: &PlanSignals, rationale: &mut Vec<Decision>) -> usize {
    let layout = if s.segments > 0 {
        format!("segmented x{}", s.segments)
    } else {
        "flat".to_owned()
    };
    if s.n < MIN_PARALLEL_INPUT {
        rationale.push(Decision {
            choice: "chunks=1".to_owned(),
            because: format!(
                "{layout}: n={} below the parallel threshold {MIN_PARALLEL_INPUT}",
                s.n
            ),
        });
        1
    } else if s.effective_cores <= 1 {
        rationale.push(Decision {
            choice: "chunks=1".to_owned(),
            because: format!("{layout}: one effective core — serial floor"),
        });
        1
    } else if s.chunked_sort_speedup < 1.0 {
        rationale.push(Decision {
            choice: "chunks=1".to_owned(),
            because: format!(
                "{layout}: measured chunked sort speedup {:.2}x < 1.0 — serial floor",
                s.chunked_sort_speedup
            ),
        });
        1
    } else {
        let chunks = s.effective_cores;
        rationale.push(Decision {
            choice: format!("chunks={chunks}"),
            because: format!(
                "{layout}: chunked builds measured {:.2}x faster at {chunks} cores",
                s.chunked_sort_speedup
            ),
        });
        chunks
    }
}

fn strategy_name(s: SamplerStrategy) -> &'static str {
    match s {
        SamplerStrategy::Alias => "alias",
        SamplerStrategy::Cdf => "cdf",
        SamplerStrategy::Auto => "auto",
    }
}

/// Aggregated planning decisions — what `supg-serve` surfaces per
/// dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Queries that ran through the planner.
    pub planned: u64,
    /// Plans that resolved the alias backend.
    pub resolved_alias: u64,
    /// Plans that resolved the CDF backend.
    pub resolved_cdf: u64,
    /// Plans whose sampler was pinned (by the caller or a server
    /// override) rather than adaptively resolved.
    pub pinned: u64,
}

/// The long-lived planning state for one oracle: the per-call latency
/// EWMA persisted across queries, the serving policy, and the decision
/// counters. Attach one to a session with
/// [`SupgSession::planned`](crate::session::SupgSession::planned); the
/// session snapshots signals, resolves the plan, executes it, and feeds
/// the outcome back via [`observe`](Planner::observe).
///
/// All state is atomic — one `Planner` can serve concurrent sessions.
#[derive(Debug, Default)]
pub struct Planner {
    policy: PlanPolicy,
    /// f64 bits of the EWMA; 0 = no observation yet.
    ewma_bits: AtomicU64,
    planned: AtomicU64,
    resolved_alias: AtomicU64,
    resolved_cdf: AtomicU64,
    pinned: AtomicU64,
}

impl Planner {
    /// A planner with the default (fully adaptive) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A planner whose resolutions are constrained by `policy`.
    pub fn with_policy(policy: PlanPolicy) -> Self {
        Planner {
            policy,
            ..Self::default()
        }
    }

    /// The policy this planner enforces.
    pub fn policy(&self) -> PlanPolicy {
        self.policy
    }

    /// The current per-call oracle latency EWMA in ns (`None` until the
    /// first observation).
    pub fn oracle_ns_per_call(&self) -> Option<f64> {
        let bits = self.ewma_bits.load(Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    /// Feeds one finished query back into the latency EWMA, from the
    /// outcome's *oracle-time* accounting
    /// (`oracle_elapsed / oracle_calls`). Whole-query `elapsed` would be
    /// wrong here: it includes the threshold sweep, artifact builds and
    /// result materialization, all of which scale with the corpus — a
    /// µs-oracle query over 10⁷ records would average out past
    /// [`SLOW_ORACLE_NS`] and flip the plan to the latency-bound branch.
    /// Only wall-clock spent inside `label_batch` counts. Sessions with
    /// an attached planner call this automatically; queries that never
    /// reached the oracle (or whose labeling time was immeasurably
    /// small) leave the EWMA untouched.
    pub fn observe<R>(&self, outcome: &QueryOutcome<R>) {
        if outcome.oracle_calls == 0 || outcome.oracle_elapsed.is_zero() {
            return;
        }
        self.observe_ns_per_call(
            outcome.oracle_elapsed.as_nanos() as f64 / outcome.oracle_calls as f64,
        );
    }

    /// Merges one per-call latency sample (ns) into the EWMA.
    pub fn observe_ns_per_call(&self, per_call: f64) {
        if !per_call.is_finite() || per_call <= 0.0 {
            return;
        }
        let mut cur = self.ewma_bits.load(Ordering::Relaxed);
        loop {
            let next = if cur == 0 {
                per_call
            } else {
                (1.0 - EWMA_ALPHA) * f64::from_bits(cur) + EWMA_ALPHA * per_call
            };
            match self.ewma_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one resolution in the aggregated counters.
    pub(crate) fn note(&self, signals: &PlanSignals, plan: &Plan) {
        self.planned.fetch_add(1, Ordering::Relaxed);
        match plan.sampler {
            SamplerStrategy::Alias => self.resolved_alias.fetch_add(1, Ordering::Relaxed),
            SamplerStrategy::Cdf => self.resolved_cdf.fetch_add(1, Ordering::Relaxed),
            SamplerStrategy::Auto => 0, // unreachable: resolution is always concrete
        };
        let was_pinned = signals.policy.pin_sampler.is_some()
            || signals.requested_sampler != SamplerStrategy::Auto;
        if was_pinned {
            self.pinned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A snapshot of the aggregated decision counters.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            planned: self.planned.load(Ordering::Relaxed),
            resolved_alias: self.resolved_alias.load(Ordering::Relaxed),
            resolved_cdf: self.resolved_cdf.load(Ordering::Relaxed),
            pinned: self.pinned.load(Ordering::Relaxed),
        }
    }
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A synthetic finished-query outcome with explicit accounting — the
    /// shape `observe` consumes, without running a real 10⁷-record query
    /// in a unit test.
    fn outcome_with(
        oracle_calls: usize,
        elapsed: Duration,
        oracle_elapsed: Duration,
        n_records: usize,
    ) -> QueryOutcome<()> {
        QueryOutcome {
            result: (),
            tau: 0.5,
            selector: "IS-CI-R",
            oracle_calls,
            stage_calls: oracle_calls,
            filter_calls: 0,
            sample_draws: oracle_calls,
            sample_positives: 0,
            candidates: 0,
            joint: false,
            elapsed,
            cache_hits: 0,
            cache_misses: 0,
            stage_elapsed: elapsed,
            filter_elapsed: Duration::ZERO,
            oracle_elapsed,
            oracle_retries: 0,
            oracle_failures: 0,
            retry_backoff: Duration::ZERO,
            n_records,
            plan: None,
        }
    }

    fn base_signals() -> PlanSignals {
        PlanSignals {
            n: 100_000,
            segments: 0,
            prepared: true,
            recipe: RecipeState::Cold,
            requested_sampler: SamplerStrategy::Auto,
            pinned_runtime: None,
            oracle_ns_per_call: None,
            effective_cores: 4,
            chunked_sort_speedup: 2.0,
            policy: PlanPolicy::default(),
        }
    }

    #[test]
    fn resolution_is_a_pure_function_of_the_snapshot() {
        let s = base_signals();
        assert_eq!(Plan::resolve(&s), Plan::resolve(&s));
    }

    #[test]
    fn auto_promotes_cold_to_warm_like_the_auto_strategy() {
        let mut s = base_signals();
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Cdf);
        s.recipe = RecipeState::SeenOnce;
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Alias);
        s.recipe = RecipeState::WarmAlias;
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Alias);
        s.recipe = RecipeState::WarmCdf;
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Alias);
    }

    #[test]
    fn caller_pin_beats_adaptivity_and_override_beats_caller() {
        let mut s = base_signals();
        s.requested_sampler = SamplerStrategy::Alias;
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Alias);
        s.policy.pin_sampler = Some(SamplerStrategy::Cdf);
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Cdf);
        s.policy.forbid_cdf = true;
        assert_eq!(Plan::resolve(&s).sampler, SamplerStrategy::Alias);
    }

    #[test]
    fn serial_floor_vetoes_unprofitable_chunking() {
        let mut s = base_signals();
        s.chunked_sort_speedup = 0.79;
        assert_eq!(Plan::resolve(&s).chunks, 1);
        s.chunked_sort_speedup = 2.0;
        s.effective_cores = 1;
        assert_eq!(Plan::resolve(&s).chunks, 1);
        s.effective_cores = 4;
        s.n = 100;
        assert_eq!(Plan::resolve(&s).chunks, 1);
        s.n = 100_000;
        assert_eq!(Plan::resolve(&s).chunks, 4);
    }

    #[test]
    fn oracle_latency_drives_batching() {
        let mut s = base_signals();
        let defaults = Plan::resolve(&s);
        assert_eq!(defaults.batch_size, DEFAULT_BATCH_SIZE);
        assert_eq!(defaults.parallelism, 4);
        s.oracle_ns_per_call = Some(1_000_000.0);
        let slow = Plan::resolve(&s);
        assert_eq!(slow.batch_size, SLOW_ORACLE_BATCH);
        assert_eq!(slow.parallelism, 16);
        s.oracle_ns_per_call = Some(500.0);
        let fast = Plan::resolve(&s);
        assert_eq!(fast.batch_size, FAST_ORACLE_BATCH);
        assert_eq!(fast.parallelism, 4);
    }

    #[test]
    fn pinned_runtime_is_honored_verbatim() {
        let mut s = base_signals();
        s.pinned_runtime = Some(
            RuntimeConfig::default()
                .with_parallelism(7)
                .with_batch_size(33),
        );
        let plan = Plan::resolve(&s);
        assert_eq!(plan.parallelism, 7);
        assert_eq!(plan.batch_size, 33);
        assert!(plan
            .rationale
            .iter()
            .any(|d| d.because.contains("pinned by caller")));
    }

    #[test]
    fn ewma_converges_toward_observations() {
        let planner = Planner::new();
        assert_eq!(planner.oracle_ns_per_call(), None);
        planner.observe_ns_per_call(1000.0);
        assert_eq!(planner.oracle_ns_per_call(), Some(1000.0));
        for _ in 0..50 {
            planner.observe_ns_per_call(2000.0);
        }
        let ewma = planner.oracle_ns_per_call().unwrap();
        assert!(
            (ewma - 2000.0).abs() < 1.0,
            "EWMA {ewma} should approach 2000"
        );
    }

    #[test]
    fn fast_oracle_on_huge_corpus_stays_throughput_bound() {
        // Regression for the latency-accounting bug: a µs-oracle query
        // over a 10⁷-record corpus spends ~10 s in threshold sweep,
        // artifact builds and materialization but only 1 ms inside the
        // oracle. Seeding the EWMA from whole-query `elapsed` (the old
        // accounting) averages 10⁷ ns/call — past SLOW_ORACLE_NS — and
        // flips the plan to the latency-bound branch; the oracle-time
        // accounting keeps it throughput-bound where it belongs.
        let outcome = outcome_with(
            1_000,
            Duration::from_secs(10),
            Duration::from_millis(1),
            10_000_000,
        );
        let planner = Planner::new();
        planner.observe(&outcome);
        let ewma = planner.oracle_ns_per_call().expect("EWMA seeded");
        assert!(
            ewma < SLOW_ORACLE_NS,
            "EWMA {ewma} ns/call must stay below the latency-bound cutoff \
             {SLOW_ORACLE_NS} — whole-query time leaked into the oracle accounting"
        );
        let mut s = base_signals();
        s.oracle_ns_per_call = planner.oracle_ns_per_call();
        let plan = Plan::resolve(&s);
        assert_eq!(
            plan.batch_size, FAST_ORACLE_BATCH,
            "throughput-bound batches"
        );
        assert_eq!(plan.parallelism, s.effective_cores, "no oversubscription");
    }

    #[test]
    fn observe_skips_queries_without_oracle_accounting() {
        let planner = Planner::new();
        // No oracle calls at all: nothing to average.
        planner.observe(&outcome_with(
            0,
            Duration::from_secs(1),
            Duration::ZERO,
            1_000,
        ));
        assert_eq!(planner.oracle_ns_per_call(), None);
        // Calls but immeasurably small labeling time: a zero sample must
        // not poison the EWMA (and must not divide into a bogus 0).
        planner.observe(&outcome_with(
            100,
            Duration::from_secs(1),
            Duration::ZERO,
            1_000,
        ));
        assert_eq!(planner.oracle_ns_per_call(), None);
    }

    #[test]
    fn non_finite_and_non_positive_samples_are_rejected() {
        let planner = Planner::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -5.0] {
            planner.observe_ns_per_call(bad);
            assert_eq!(planner.oracle_ns_per_call(), None, "{bad} accepted");
        }
        planner.observe_ns_per_call(500.0);
        assert_eq!(planner.oracle_ns_per_call(), Some(500.0));
        for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
            planner.observe_ns_per_call(bad);
            assert_eq!(
                planner.oracle_ns_per_call(),
                Some(500.0),
                "{bad} perturbed a seeded EWMA"
            );
        }
    }

    #[test]
    fn racing_observers_converge_without_losing_the_cas_loop() {
        use std::sync::Arc;
        // All writers observe the same power-of-two value: the first
        // observation seeds the EWMA to exactly v, and the update
        // (1-α)·v + α·v is bit-exact at a power of two (both products
        // are exact scalings and fl(0.7)+fl(0.3) rounds to 1.0), so
        // under ANY interleaving the final EWMA must be exactly v —
        // anything else means the CAS loop lost or mangled an update.
        let planner = Arc::new(Planner::new());
        let v = 1024.0;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let planner = Arc::clone(&planner);
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        planner.observe_ns_per_call(v);
                    }
                });
            }
        });
        assert_eq!(planner.oracle_ns_per_call(), Some(v));

        // Mixed values under racing writers: order-dependent, but the
        // EWMA is a convex combination of observations, so it must land
        // strictly inside [min, max].
        let planner = Arc::new(Planner::new());
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let planner = Arc::clone(&planner);
                scope.spawn(move || {
                    let v = if t % 2 == 0 { 1_000.0 } else { 3_000.0 };
                    for _ in 0..2_000 {
                        planner.observe_ns_per_call(v);
                    }
                });
            }
        });
        let ewma = planner.oracle_ns_per_call().unwrap();
        assert!(
            (1_000.0..=3_000.0).contains(&ewma),
            "EWMA {ewma} escaped the observation range"
        );
    }

    #[test]
    fn planner_counters_aggregate_decisions() {
        let planner = Planner::new();
        let s = base_signals();
        let plan = Plan::resolve(&s);
        planner.note(&s, &plan);
        let mut pinned = s;
        pinned.requested_sampler = SamplerStrategy::Alias;
        let plan2 = Plan::resolve(&pinned);
        planner.note(&pinned, &plan2);
        let stats = planner.stats();
        assert_eq!(stats.planned, 2);
        assert_eq!(stats.resolved_cdf, 1);
        assert_eq!(stats.resolved_alias, 1);
        assert_eq!(stats.pinned, 1);
    }

    #[test]
    fn measured_profile_is_cached_and_sane() {
        let a = CalibrationProfile::measured();
        let b = CalibrationProfile::measured();
        assert!(std::ptr::eq(a, b));
        assert!(a.effective_cores >= 1);
        assert!(a.sort_serial_ns_per_key > 0.0);
        assert!(a.chunked_sort_speedup() > 0.0);
    }

    #[test]
    fn report_renders_one_line_per_decision() {
        let plan = Plan::resolve(&base_signals());
        let report = plan.report();
        assert_eq!(report.trim().lines().count(), plan.rationale.len());
        assert!(report.contains("sampler="));
        assert!(report.contains("chunks="));
    }
}
