//! Deterministic oracle fault injection and the retry runtime.
//!
//! The paper's oracle is any expensive predicate — a human labeler or a
//! heavyweight DNN behind a network hop — and such backends fail
//! *transiently* in production: timeouts, dropped connections, throttled
//! replicas. This module provides both halves of arguing that the `1 − δ`
//! guarantee survives infrastructure noise, not just statistical noise:
//!
//! * [`FaultyOracle`] — a chaos harness. Wraps any [`Oracle`] and injects
//!   transient faults, permanent faults and simulated latency as a **pure
//!   function of the record index** (decided by a seeded [`FaultPlan`]
//!   through [`split_seed`]/[`split_unit`]), so a fault schedule is
//!   reproducible at any parallelism or batch size and composes over any
//!   inner oracle.
//! * [`ResilientOracle`] — the production-shaped recovery wrapper. Retries
//!   transients under a [`RetryPolicy`] (bounded attempts, deterministic
//!   exponential backoff with seeded jitter, optional per-query deadline),
//!   escalates to [`SupgError::OracleFailed`] when attempts run out, and
//!   keeps budget accounting exact: faults fire *before* the inner oracle
//!   is consulted, so only the final successful distinct label consumes
//!   budget and a retried run's
//!   [`QueryOutcome`](crate::session::QueryOutcome) is bit-identical to
//!   the fault-free run (pinned by `tests/resilience_parity.rs`), apart
//!   from the new retry-accounting fields.
//!
//! ## Determinism contract under retries
//!
//! Sampling stays on the session thread and [`FaultyOracle`] has no
//! batch-native path, so labeling requests reach it in input order for
//! every `parallelism`/`batch_size` setting; its per-index attempt
//! counters therefore evolve identically across runtime configurations,
//! and so does every injected fault. [`ResilientOracle`] never sleeps by
//! default — backoff is *accounted* (in [`RetryStats`] and against the
//! deadline's virtual clock) rather than slept — so tests are fast and
//! timing-independent; opt into real sleeping with
//! [`RetryPolicy::with_sleep`] for wall-clock-faithful deployments.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::error::SupgError;
use crate::oracle::Oracle;
use crate::runtime::{split_seed, split_unit, RuntimeConfig};
use crate::session::SessionOracle;

/// Retry-accounting totals an oracle stack reports through
/// [`Oracle::retry_stats`]: how many transient failures were retried, how
/// many records failed permanently, and how much backoff was accrued.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient oracle failures that were re-attempted.
    pub retries: u64,
    /// Records whose labeling failed permanently (attempts exhausted).
    pub failures: u64,
    /// Total backoff accrued between attempts (virtual unless the policy
    /// sleeps for real).
    pub backoff: Duration,
}

impl RetryStats {
    /// Component-wise sum — how a wrapper folds its own counters into its
    /// inner oracle's.
    pub fn merged(self, other: RetryStats) -> RetryStats {
        RetryStats {
            retries: self.retries + other.retries,
            failures: self.failures + other.failures,
            backoff: self.backoff + other.backoff,
        }
    }

    /// Component-wise (saturating) difference: the activity that happened
    /// *since* an earlier snapshot — how the session attributes retries to
    /// one query on a long-lived oracle.
    pub fn since(self, earlier: RetryStats) -> RetryStats {
        RetryStats {
            retries: self.retries.saturating_sub(earlier.retries),
            failures: self.failures.saturating_sub(earlier.failures),
            backoff: self.backoff.saturating_sub(earlier.backoff),
        }
    }
}

/// What the fault plan decreed for one record index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The record labels normally.
    Clean,
    /// The first `count` labeling attempts fail transiently, then the
    /// record labels normally.
    Transient {
        /// Number of leading attempts that fail.
        count: u32,
    },
    /// Every labeling attempt fails permanently.
    Permanent,
}

/// A seeded, declarative fault schedule: per record index, decide between
/// clean labeling, a bounded run of transient failures, or a permanent
/// failure — plus a fixed simulated latency per labeling attempt.
///
/// Decisions are pure functions of `(seed, index)` via [`split_unit`], so
/// the schedule is identical whatever order, thread or batch the records
/// are labeled in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transient_rate: f64,
    permanent_rate: f64,
    max_transients: u32,
    latency: Duration,
}

/// Sub-stream tags carving independent decision streams out of one seed.
const STREAM_KIND: u64 = 0x_FA01;
const STREAM_COUNT: u64 = 0x_FA02;
const STREAM_JITTER: u64 = 0x_FA03;

impl FaultPlan {
    /// A plan with no faults and no latency — compose rates in with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.0,
            permanent_rate: 0.0,
            max_transients: 2,
            latency: Duration::ZERO,
        }
    }

    /// Fraction of records (clamped to `[0, 1]`) whose first attempts fail
    /// transiently.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fraction of records (clamped to `[0, 1]`) that fail permanently.
    /// Permanent faults take precedence over transient ones.
    pub fn with_permanent_rate(mut self, rate: f64) -> Self {
        self.permanent_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Upper bound (clamped to ≥ 1; default 2) on the consecutive
    /// transient failures one record injects; the per-record count is
    /// drawn uniformly from `1..=max`.
    pub fn with_max_transients(mut self, max: u32) -> Self {
        self.max_transients = max.max(1);
        self
    }

    /// Simulated backend latency per labeling attempt, accumulated in
    /// [`FaultyOracle::simulated_latency`] — never slept.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// The simulated per-attempt latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// The plan's decree for `index` — pure, reproducible, thread-free.
    pub fn decision(&self, index: usize) -> FaultDecision {
        let u = split_unit(split_seed(self.seed, STREAM_KIND), index as u64);
        if u < self.permanent_rate {
            FaultDecision::Permanent
        } else if u < self.permanent_rate + self.transient_rate {
            let extra = split_seed(split_seed(self.seed, STREAM_COUNT), index as u64)
                % u64::from(self.max_transients);
            FaultDecision::Transient {
                count: 1 + extra as u32,
            }
        } else {
            FaultDecision::Clean
        }
    }
}

/// A chaos-injection wrapper over any [`Oracle`]: faults fire according to
/// the [`FaultPlan`] *before* the inner oracle is consulted, so an
/// injected failure never consumes budget, never caches a label, and a
/// fault that is eventually retried through leaves the inner oracle in
/// exactly the fault-free state.
///
/// Deliberately has **no** batch-native path: the blanket
/// [`BatchOracle`](crate::oracle::BatchOracle) loop labels records in
/// input order on the session thread, which keeps the per-index attempt
/// counters — and therefore the fault schedule — identical at every
/// `parallelism`/`batch_size`. This is a test/chaos harness, not a
/// throughput path.
#[derive(Debug)]
pub struct FaultyOracle<O> {
    inner: O,
    plan: FaultPlan,
    attempts: HashMap<usize, u32>,
    injected_transients: u64,
    injected_permanents: u64,
    simulated_latency: Duration,
}

impl<O: Oracle> FaultyOracle<O> {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: O, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            attempts: HashMap::new(),
            injected_transients: 0,
            injected_permanents: 0,
            simulated_latency: Duration::ZERO,
        }
    }

    /// Transient faults injected so far.
    pub fn injected_transients(&self) -> u64 {
        self.injected_transients
    }

    /// Permanent faults injected so far.
    pub fn injected_permanents(&self) -> u64 {
        self.injected_permanents
    }

    /// Total simulated backend latency accumulated across attempts.
    pub fn simulated_latency(&self) -> Duration {
        self.simulated_latency
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Oracle> Oracle for FaultyOracle<O> {
    fn label(&mut self, index: usize) -> Result<bool, SupgError> {
        let attempt = self.attempts.entry(index).or_insert(0);
        *attempt += 1;
        let attempt = *attempt;
        self.simulated_latency += self.plan.latency;
        match self.plan.decision(index) {
            FaultDecision::Permanent => {
                self.injected_permanents += 1;
                Err(SupgError::OracleFailed {
                    index,
                    attempts: attempt,
                })
            }
            FaultDecision::Transient { count } if attempt <= count => {
                self.injected_transients += 1;
                Err(SupgError::OracleTransient {
                    index,
                    cause: format!("injected transient {attempt}/{count}"),
                })
            }
            _ => self.inner.label(index),
        }
    }

    fn calls_used(&self) -> usize {
        self.inner.calls_used()
    }

    fn budget(&self) -> usize {
        self.inner.budget()
    }

    fn configure_runtime(&mut self, runtime: RuntimeConfig) {
        self.inner.configure_runtime(runtime);
    }

    fn retry_stats(&self) -> RetryStats {
        self.inner.retry_stats()
    }
}

impl<O: SessionOracle> SessionOracle for FaultyOracle<O> {
    fn set_budget(&mut self, budget: usize) {
        self.inner.set_budget(budget);
    }
}

/// How [`ResilientOracle`] recovers from transient failures: bounded
/// attempts, capped exponential backoff with seeded jitter, and an
/// optional per-query deadline.
///
/// Backoff before retry `k` (1-based) is
/// `min(base_backoff · 2^(k−1), max_backoff)` plus a jitter fraction
/// drawn deterministically from `(seed, index, k)` — reproducible, never
/// synchronized across records (no thundering herd on a recovering
/// backend).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Labeling attempts per record, including the first (clamped to ≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Cap on the exponential backoff growth.
    pub max_backoff: Duration,
    /// Jitter as a fraction of the capped backoff (`0.1` = up to +10%).
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
    /// Per-query deadline checked before every attempt, against real
    /// elapsed time plus accrued virtual backoff.
    pub deadline: Option<Duration>,
    /// Whether to actually sleep the backoff (default `false`: backoff is
    /// accounted and counted against the deadline, not slept — the right
    /// mode for simulated faults and tests).
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter: 0.1,
            seed: 0x5097_2020,
            deadline: None,
            sleep: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff) — the shape
    /// serving uses when a caller sets only a deadline.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Policy with a different attempt bound (clamped to ≥ 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Policy with different backoff bounds.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// Policy with a different jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Policy with a different jitter-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Policy with a per-query deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Policy that really sleeps its backoff.
    pub fn with_sleep(mut self, sleep: bool) -> Self {
        self.sleep = sleep;
        self
    }

    /// The deterministic backoff before retry `retry` (1-based) of record
    /// `index`: capped exponential plus seeded jitter.
    pub fn backoff_for(&self, retry: u32, index: usize) -> Duration {
        let doublings = retry.saturating_sub(1).min(20);
        let exp = self.base_backoff.saturating_mul(1 << doublings);
        let capped = exp.min(self.max_backoff);
        let stream = split_seed(split_seed(self.seed, STREAM_JITTER), index as u64);
        let u = split_unit(stream, u64::from(retry));
        capped + capped.mul_f64(self.jitter.clamp(0.0, 1.0) * u)
    }
}

/// The retry runtime: wraps any [`Oracle`] and re-issues transiently
/// failing label calls under a [`RetryPolicy`], escalating to
/// [`SupgError::OracleFailed`] when attempts run out and to
/// [`SupgError::DeadlineExceeded`] when the per-query deadline elapses.
///
/// Non-transient errors ([`SupgError::is_transient`] is `false` — budget
/// exhaustion, bad indexes, permanent faults) propagate immediately:
/// retrying a deterministic failure only burns the deadline.
///
/// Budget exactness is structural: a transient fault fires before the
/// inner oracle consumes anything, so the eventual success is the one and
/// only budget-consuming call for that record, and query outcomes are
/// bit-identical to the fault-free run.
#[derive(Debug)]
pub struct ResilientOracle<O> {
    inner: O,
    policy: RetryPolicy,
    stats: RetryStats,
    started: Instant,
    virtual_backoff: Duration,
}

impl<O: Oracle> ResilientOracle<O> {
    /// Wraps `inner` under the given retry policy. The deadline clock (if
    /// any) starts now.
    pub fn new(inner: O, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy: RetryPolicy {
                max_attempts: policy.max_attempts.max(1),
                ..policy
            },
            stats: RetryStats::default(),
            started: Instant::now(),
            virtual_backoff: Duration::ZERO,
        }
    }

    /// This wrapper's own retry counters (excluding any inner stack's).
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the inner oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Elapsed time against the deadline: real time, plus backoff that was
    /// accounted instead of slept.
    fn elapsed(&self) -> Duration {
        let real = self.started.elapsed();
        if self.policy.sleep {
            real
        } else {
            real + self.virtual_backoff
        }
    }

    fn check_deadline(&self) -> Result<(), SupgError> {
        if let Some(deadline) = self.policy.deadline {
            if self.elapsed() >= deadline {
                return Err(SupgError::DeadlineExceeded { deadline });
            }
        }
        Ok(())
    }

    /// Accounts (and optionally sleeps) the backoff before retry `retry`
    /// of `index`.
    fn back_off(&mut self, retry: u32, index: usize) {
        let pause = self.policy.backoff_for(retry, index);
        self.stats.backoff += pause;
        self.virtual_backoff += pause;
        if self.policy.sleep {
            std::thread::sleep(pause);
        }
    }
}

impl<O: Oracle> Oracle for ResilientOracle<O> {
    fn label(&mut self, index: usize) -> Result<bool, SupgError> {
        let max = self.policy.max_attempts;
        for attempt in 1..=max {
            self.check_deadline()?;
            match self.inner.label(index) {
                Ok(label) => return Ok(label),
                Err(e) if e.is_transient() => {
                    if attempt == max {
                        self.stats.failures += 1;
                        return Err(SupgError::OracleFailed {
                            index,
                            attempts: max,
                        });
                    }
                    self.stats.retries += 1;
                    self.back_off(attempt, index);
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("retry loop returns on every path")
    }

    fn calls_used(&self) -> usize {
        self.inner.calls_used()
    }

    fn budget(&self) -> usize {
        self.inner.budget()
    }

    fn label_batch_native(&mut self, indices: &[usize]) -> Option<Result<Vec<bool>, SupgError>> {
        // Only meaningful when the *inner* oracle is batch-native (the
        // fault harness is not — it takes the per-record blanket loop
        // through `label`, which carries the per-record retry logic).
        // A transiently failing native batch is retried whole: the
        // documented partial-failure contract guarantees every record
        // before the failing position is already cached, so the re-issue
        // costs cache hits plus the one failing record.
        let mut attempts: HashMap<usize, u32> = HashMap::new();
        loop {
            if let Err(e) = self.check_deadline() {
                return Some(Err(e));
            }
            match self.inner.label_batch_native(indices)? {
                Ok(labels) => return Some(Ok(labels)),
                Err(SupgError::OracleTransient { index, .. }) => {
                    let attempt = attempts.entry(index).or_insert(1);
                    if *attempt >= self.policy.max_attempts {
                        self.stats.failures += 1;
                        return Some(Err(SupgError::OracleFailed {
                            index,
                            attempts: *attempt,
                        }));
                    }
                    self.stats.retries += 1;
                    let retry = *attempt;
                    *attempt += 1;
                    self.back_off(retry, index);
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }

    fn configure_runtime(&mut self, runtime: RuntimeConfig) {
        self.inner.configure_runtime(runtime);
    }

    fn retry_stats(&self) -> RetryStats {
        self.stats.merged(self.inner.retry_stats())
    }
}

impl<O: SessionOracle> SessionOracle for ResilientOracle<O> {
    fn set_budget(&mut self, budget: usize) {
        self.inner.set_budget(budget);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{BatchOracle, CachedOracle};

    fn faulty(
        labels: Vec<bool>,
        budget: usize,
        transient: f64,
        permanent: f64,
    ) -> FaultyOracle<CachedOracle> {
        FaultyOracle::new(
            CachedOracle::from_labels(labels, budget),
            FaultPlan::new(77)
                .with_transient_rate(transient)
                .with_permanent_rate(permanent),
        )
    }

    #[test]
    fn fault_plan_is_a_pure_function_of_the_index() {
        let plan = FaultPlan::new(9)
            .with_transient_rate(0.3)
            .with_permanent_rate(0.05)
            .with_max_transients(3);
        let first: Vec<FaultDecision> = (0..2_000).map(|i| plan.decision(i)).collect();
        let second: Vec<FaultDecision> = (0..2_000).map(|i| plan.decision(i)).collect();
        assert_eq!(first, second);
        let transients = first
            .iter()
            .filter(|d| matches!(d, FaultDecision::Transient { .. }))
            .count();
        let permanents = first
            .iter()
            .filter(|d| matches!(d, FaultDecision::Permanent))
            .count();
        // Rates land near their nominal values (loose: 2000 draws).
        assert!((400..=800).contains(&transients), "{transients} transients");
        assert!((40..=180).contains(&permanents), "{permanents} permanents");
        for d in &first {
            if let FaultDecision::Transient { count } = d {
                assert!((1..=3).contains(count));
            }
        }
    }

    #[test]
    fn transient_faults_do_not_consume_budget_or_cache() {
        // Find a transiently faulting index under the plan.
        let plan = FaultPlan::new(77).with_transient_rate(0.2);
        let idx = (0..500)
            .find(|&i| matches!(plan.decision(i), FaultDecision::Transient { .. }))
            .expect("some index faults");
        let mut o = faulty(vec![true; 500], 10, 0.2, 0.0);
        let err = o.label(idx).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(o.calls_used(), 0, "injected fault consumed budget");
        assert_eq!(o.inner().cached(idx), None);
        // Retrying past the fault count succeeds and bills exactly once.
        let label = loop {
            match o.label(idx) {
                Ok(l) => break l,
                Err(e) => assert!(e.is_transient()),
            }
        };
        assert!(label);
        assert_eq!(o.calls_used(), 1);
        assert!(o.injected_transients() >= 1);
    }

    #[test]
    fn permanent_faults_fire_on_every_attempt() {
        let plan = FaultPlan::new(77).with_permanent_rate(0.1);
        let idx = (0..500)
            .find(|&i| matches!(plan.decision(i), FaultDecision::Permanent))
            .expect("some index faults permanently");
        let mut o = faulty(vec![true; 500], 10, 0.0, 0.1);
        for attempt in 1..=3u32 {
            let err = o.label(idx).unwrap_err();
            assert_eq!(
                err,
                SupgError::OracleFailed {
                    index: idx,
                    attempts: attempt
                }
            );
            assert!(!err.is_transient());
        }
        assert_eq!(o.calls_used(), 0);
        assert_eq!(o.injected_permanents(), 3);
    }

    #[test]
    fn simulated_latency_accumulates_without_sleeping() {
        let plan = FaultPlan::new(1).with_latency(Duration::from_millis(250));
        let mut o = FaultyOracle::new(CachedOracle::from_labels(vec![true; 4], 4), plan);
        let wall = Instant::now();
        for i in 0..4 {
            o.label(i).unwrap();
        }
        assert_eq!(o.simulated_latency(), Duration::from_millis(1_000));
        assert!(
            wall.elapsed() < Duration::from_millis(900),
            "latency was slept"
        );
    }

    #[test]
    fn resilient_oracle_retries_transients_to_success() {
        let inner = faulty((0..500).map(|i| i % 3 == 0).collect(), 500, 0.3, 0.0);
        let mut o = ResilientOracle::new(inner, RetryPolicy::default());
        let labels: Vec<bool> = (0..500).map(|i| o.label(i).unwrap()).collect();
        assert_eq!(labels, (0..500).map(|i| i % 3 == 0).collect::<Vec<_>>());
        // Every record was billed exactly once despite the faults.
        assert_eq!(o.calls_used(), 500);
        let stats = o.retry_stats();
        assert!(stats.retries > 0, "no transients were exercised");
        assert_eq!(stats.failures, 0);
        assert!(stats.backoff > Duration::ZERO);
    }

    #[test]
    fn attempt_exhaustion_escalates_to_oracle_failed() {
        let plan = FaultPlan::new(77)
            .with_transient_rate(0.2)
            .with_max_transients(5);
        let idx = (0..500)
            .find(|&i| matches!(plan.decision(i), FaultDecision::Transient { count } if count >= 3))
            .expect("some index faults at least 3 times");
        let inner = FaultyOracle::new(CachedOracle::from_labels(vec![true; 500], 500), plan);
        let mut o = ResilientOracle::new(inner, RetryPolicy::default().with_max_attempts(2));
        assert_eq!(
            o.label(idx).unwrap_err(),
            SupgError::OracleFailed {
                index: idx,
                attempts: 2
            }
        );
        assert_eq!(o.stats().failures, 1);
        assert_eq!(o.stats().retries, 1, "one re-attempt before giving up");
        assert_eq!(o.calls_used(), 0, "failed record must not be billed");
    }

    #[test]
    fn non_transient_errors_propagate_without_retry() {
        let inner = CachedOracle::from_labels(vec![true; 4], 1);
        let mut o = ResilientOracle::new(inner, RetryPolicy::default());
        o.label(0).unwrap();
        assert_eq!(
            o.label(1).unwrap_err(),
            SupgError::BudgetExhausted { budget: 1 }
        );
        assert_eq!(
            o.label(9).unwrap_err(),
            SupgError::IndexOutOfRange { index: 9, len: 4 }
        );
        let stats = o.stats();
        assert_eq!((stats.retries, stats.failures), (0, 0));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy::default()
            .with_backoff(Duration::from_millis(10), Duration::from_millis(50))
            .with_jitter(0.0);
        assert_eq!(policy.backoff_for(1, 7), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2, 7), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3, 7), Duration::from_millis(40));
        assert_eq!(
            policy.backoff_for(4, 7),
            Duration::from_millis(50),
            "capped"
        );
        assert_eq!(policy.backoff_for(30, 7), Duration::from_millis(50));

        let jittered = RetryPolicy::default()
            .with_backoff(Duration::from_millis(10), Duration::from_secs(1))
            .with_jitter(0.5);
        let a = jittered.backoff_for(1, 7);
        assert_eq!(a, jittered.backoff_for(1, 7), "jitter must be seeded");
        assert!(a >= Duration::from_millis(10) && a <= Duration::from_millis(15));
        // Different records decorrelate (with overwhelming probability
        // over a fixed seed this inequality is deterministic).
        assert_ne!(jittered.backoff_for(1, 7), jittered.backoff_for(1, 8));
    }

    #[test]
    fn deadline_trips_deterministically_via_virtual_backoff() {
        // Zero deadline: the very first attempt is already late.
        let inner = CachedOracle::from_labels(vec![true; 8], 8);
        let mut o = ResilientOracle::new(inner, RetryPolicy::none().with_deadline(Duration::ZERO));
        assert_eq!(
            o.label(0).unwrap_err(),
            SupgError::DeadlineExceeded {
                deadline: Duration::ZERO
            }
        );

        // A generous wall-clock deadline tripped purely by accounted
        // (unslept) backoff: the retries charge hours of virtual time.
        let plan = FaultPlan::new(77).with_transient_rate(0.2);
        let idx = (0..500)
            .find(|&i| matches!(plan.decision(i), FaultDecision::Transient { .. }))
            .expect("some index faults");
        let inner = FaultyOracle::new(CachedOracle::from_labels(vec![true; 500], 500), plan);
        let mut o = ResilientOracle::new(
            inner,
            RetryPolicy::default()
                .with_backoff(Duration::from_secs(3_600), Duration::from_secs(3_600))
                .with_deadline(Duration::from_secs(60)),
        );
        let wall = Instant::now();
        assert_eq!(
            o.label(idx).unwrap_err(),
            SupgError::DeadlineExceeded {
                deadline: Duration::from_secs(60)
            }
        );
        assert!(wall.elapsed() < Duration::from_secs(5), "backoff was slept");
    }

    #[test]
    fn batch_native_path_retries_whole_batches() {
        // An inner CachedOracle *is* batch-native; fail its batches
        // transiently at the oracle-source level via a wrapper that fails
        // the whole native call the first two times.
        struct FlakyBatch {
            inner: CachedOracle,
            native_failures: u32,
        }
        impl Oracle for FlakyBatch {
            fn label(&mut self, index: usize) -> Result<bool, SupgError> {
                self.inner.label(index)
            }
            fn calls_used(&self) -> usize {
                self.inner.calls_used()
            }
            fn budget(&self) -> usize {
                self.inner.budget()
            }
            fn label_batch_native(
                &mut self,
                indices: &[usize],
            ) -> Option<Result<Vec<bool>, SupgError>> {
                if self.native_failures > 0 {
                    self.native_failures -= 1;
                    return Some(Err(SupgError::OracleTransient {
                        index: indices[0],
                        cause: "batch endpoint hiccup".into(),
                    }));
                }
                self.inner.label_batch_native(indices)
            }
        }
        let inner = FlakyBatch {
            inner: CachedOracle::from_labels((0..64).map(|i| i % 2 == 0).collect(), 64),
            native_failures: 2,
        };
        let mut o = ResilientOracle::new(inner, RetryPolicy::default());
        let indices: Vec<usize> = (0..64).collect();
        let labels = o.label_batch(&indices).unwrap();
        assert_eq!(labels, (0..64).map(|i| i % 2 == 0).collect::<Vec<_>>());
        assert_eq!(o.stats().retries, 2);
        assert_eq!(o.calls_used(), 64);
    }

    #[test]
    fn mut_ref_oracles_compose_with_the_wrappers() {
        // The serving layer wraps `&mut dyn SessionOracle`; prove the
        // blanket &mut impls thread budget re-planning through the stack.
        let mut base = CachedOracle::from_labels(vec![true; 16], 4);
        {
            let dynamic: &mut dyn SessionOracle = &mut base;
            let mut o = ResilientOracle::new(dynamic, RetryPolicy::default());
            o.label(0).unwrap();
            o.set_budget(16);
            assert_eq!(o.budget(), 16);
            for i in 1..10 {
                o.label(i).unwrap();
            }
        }
        assert_eq!(base.calls_used(), 10);
        assert_eq!(base.budget(), 16);
    }

    #[test]
    fn retry_stats_merge_and_diff() {
        let a = RetryStats {
            retries: 5,
            failures: 1,
            backoff: Duration::from_millis(30),
        };
        let b = RetryStats {
            retries: 2,
            failures: 0,
            backoff: Duration::from_millis(10),
        };
        assert_eq!(
            a.merged(b),
            RetryStats {
                retries: 7,
                failures: 1,
                backoff: Duration::from_millis(40)
            }
        );
        assert_eq!(a.merged(b).since(a), b);
        assert_eq!(b.since(a), RetryStats::default(), "saturating");
    }
}
