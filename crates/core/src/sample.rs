//! The oracle-labeled sample shared by all threshold selectors.

use rand::RngCore;
use supg_stats::{PairSketch, SampleSketch};

use crate::error::SupgError;
use crate::oracle::{BatchOracle, Oracle};
use crate::prepared::WeightArtifacts;
use crate::segment::Corpus;

/// A sample of records drawn for oracle labeling, with proxy scores, labels
/// and importance-reweighting factors `m(x) = u(x)/w(x)` (all 1 under
/// uniform sampling).
///
/// The paper's reweighted empirical recall (Equation 11) over this sample is
///
/// ```text
/// Recall_Sw(τ) = Σ 1[A(x) ≥ τ]·O(x)·m(x) / Σ O(x)·m(x)
/// ```
///
/// and the selectors' core subroutine `max{τ : Recall_Sw(τ) ≥ γ}` is
/// implemented here once, over the positives sorted by descending score.
///
/// ## The canonical sweep index
///
/// Assembly sorts the sample once into the *canonical order* — descending
/// score — and snapshots running [`PairSketch`] moments after every
/// element. Because every estimator window `{x : A(x) ≥ τ}` is a prefix of
/// the canonical order, any window's full moment sketch is an O(1) array
/// lookup ([`window_sketch`](OracleSample::window_sketch)), positive-mass
/// recall queries are O(log) binary searches over prefix sums, and the
/// threshold sweep in [`crate::selectors`] runs in O(s log s) total with
/// **zero allocation after sample assembly** (closed-form CI methods). All
/// derived quantities are accumulated left-to-right in canonical order, so
/// they are bit-identical to a naive rescan of the same order — the parity
/// contract checked against [`crate::selectors::reference`].
///
/// [`label`](OracleSample::label) orders the sample by **reusing the
/// dataset's global ranks** ([`crate::rank::RankIndex`]): the sort key is
/// the integer pair `(global rank, draw position)` instead of a float
/// comparator over re-read scores — cheaper, and a strict total order, so
/// the layout is deterministic (repeat draws of one record keep draw
/// order; distinct records tied on score order by record index, matching
/// the dataset's canonical tie-break). [`from_parts`](OracleSample::from_parts)
/// — the dataset-free constructor used by tests and sample concatenation —
/// orders by a stable descending-score sort instead (ties across distinct
/// records keep draw order); both are valid canonical orders, internally
/// consistent with every derived quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSample {
    indices: Vec<usize>,
    scores: Vec<f64>,
    labels: Vec<bool>,
    reweights: Vec<f64>,
    /// Sample positions in canonical (descending-score) order.
    order: Vec<u32>,
    /// Scores in canonical order (`sorted_scores[r] = scores[order[r]]`).
    sorted_scores: Vec<f64>,
    /// The indicator-weighted values `y = O·m` in canonical order — the
    /// contiguous feed of the fused split-sketch pass
    /// ([`z_sketches`](OracleSample::z_sketches)).
    y_canon: Vec<f64>,
    /// Running pair moments over the canonical order; `pair_prefix[k]` is
    /// the sketch of the first `k` elements, so `pair_prefix.len() = s+1`.
    pair_prefix: Vec<PairSketch>,
    /// Positions of positive samples in canonical order.
    positives_desc: Vec<usize>,
    /// Scores of the positives in canonical order (descending).
    positive_scores: Vec<f64>,
    /// Prefix sums of reweights over `positives_desc` (length p+1).
    positive_weight_prefix: Vec<f64>,
    /// Dataset indices of the positives, deduplicated and ascending.
    positive_indices: Vec<usize>,
    total_positive_weight: f64,
}

impl OracleSample {
    /// Labels `indices` through `oracle` as one batched request and
    /// assembles the sample. The oracle chunks the request per its
    /// configured [`RuntimeConfig`](crate::runtime::RuntimeConfig) and may
    /// label cache misses on the [`crate::runtime`] worker pool.
    ///
    /// `reweight` maps a *position in `indices`* to the importance factor of
    /// the drawn record (uniform sampling passes `|_| 1.0`).
    ///
    /// # Errors
    /// Propagates oracle errors (budget exhaustion, bad indices).
    pub fn label<'d>(
        data: impl Into<Corpus<'d>>,
        indices: Vec<usize>,
        oracle: &mut dyn Oracle,
        mut reweight: impl FnMut(usize) -> f64,
    ) -> Result<Self, SupgError> {
        let corpus = data.into();
        let labels = oracle.label_batch(&indices)?;
        let mut scores = Vec::with_capacity(indices.len());
        let mut reweights = Vec::with_capacity(indices.len());
        for (pos, &idx) in indices.iter().enumerate() {
            scores.push(corpus.score(idx));
            reweights.push(reweight(pos));
        }
        // Canonical order from the corpus's global ranks: sort the packed
        // integer keys (rank, draw position) instead of re-comparing
        // scores — `sort_unstable` on `u64` with no indirection, and a
        // strict total order, so the layout is deterministic. Flat and
        // segmented corpora report the same global ranks, so the order is
        // layout-independent.
        let mut keys: Vec<u64> = indices
            .iter()
            .enumerate()
            .map(|(pos, &idx)| ((corpus.rank_of(idx) as u64) << 32) | pos as u64)
            .collect();
        keys.sort_unstable();
        let order: Vec<u32> = keys.into_iter().map(|k| k as u32).collect();
        Ok(Self::assemble(indices, scores, labels, reweights, order))
    }

    /// Assembles a sample from pre-labeled parts (used by tests and by the
    /// two-stage estimator, which reuses stage-1 labels), building the
    /// canonical sweep index: one O(s log s) stable sort plus O(s) prefix
    /// accumulation. (The dataset-aware [`label`](OracleSample::label)
    /// path derives the order from global ranks instead.)
    ///
    /// # Panics
    /// Panics when column lengths disagree.
    pub fn from_parts(
        indices: Vec<usize>,
        scores: Vec<f64>,
        labels: Vec<bool>,
        reweights: Vec<f64>,
    ) -> Self {
        let s = indices.len();
        // Canonical order: stable descending-score sort, so tied scores
        // keep their draw order and the layout is deterministic.
        let mut order: Vec<u32> = (0..s as u32).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("finite scores")
        });
        Self::assemble(indices, scores, labels, reweights, order)
    }

    /// Shared assembly behind [`label`](OracleSample::label) and
    /// [`from_parts`](OracleSample::from_parts): takes the canonical order
    /// as a permutation of sample positions and accumulates every derived
    /// quantity left-to-right over it.
    fn assemble(
        indices: Vec<usize>,
        scores: Vec<f64>,
        labels: Vec<bool>,
        reweights: Vec<f64>,
        order: Vec<u32>,
    ) -> Self {
        assert!(
            indices.len() == scores.len()
                && indices.len() == labels.len()
                && indices.len() == reweights.len()
                && indices.len() == order.len(),
            "OracleSample: column length mismatch"
        );
        let s = indices.len();
        let sorted_scores: Vec<f64> = order.iter().map(|&r| scores[r as usize]).collect();

        let mut y_canon = Vec::with_capacity(s);
        let mut pair_prefix = Vec::with_capacity(s + 1);
        let mut acc = PairSketch::new();
        pair_prefix.push(acc);
        let mut positives_desc = Vec::new();
        let mut positive_scores = Vec::new();
        let mut positive_weight_prefix = vec![0.0];
        let mut weight_acc = 0.0;
        for &r in &order {
            let pos = r as usize;
            let m = reweights[pos];
            let y = if labels[pos] { m } else { 0.0 };
            y_canon.push(y);
            acc.push(y, m);
            pair_prefix.push(acc);
            if labels[pos] {
                positives_desc.push(pos);
                positive_scores.push(scores[pos]);
                weight_acc += m;
                positive_weight_prefix.push(weight_acc);
            }
        }
        let total_positive_weight = weight_acc;

        let mut positive_indices: Vec<usize> =
            positives_desc.iter().map(|&pos| indices[pos]).collect();
        positive_indices.sort_unstable();
        positive_indices.dedup();

        Self {
            indices,
            scores,
            labels,
            reweights,
            order,
            sorted_scores,
            y_canon,
            pair_prefix,
            positives_desc,
            positive_scores,
            positive_weight_prefix,
            positive_indices,
            total_positive_weight,
        }
    }

    /// Number of sampled records (with multiplicity).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no records were sampled.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Dataset indices of the sampled records (with multiplicity).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Proxy scores of the sampled records.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Oracle labels of the sampled records.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Importance factors `m(x)` of the sampled records.
    pub fn reweights(&self) -> &[f64] {
        &self.reweights
    }

    /// Number of positive samples.
    pub fn positive_count(&self) -> usize {
        self.positives_desc.len()
    }

    /// Dataset indices of the positively labeled samples (deduplicated,
    /// ascending) — the `R1` component of Algorithm 1. Computed once at
    /// assembly and served as a slice.
    pub fn positive_indices(&self) -> &[usize] {
        &self.positive_indices
    }

    /// Sampled scores in canonical (descending) order.
    pub fn sorted_scores(&self) -> &[f64] {
        &self.sorted_scores
    }

    /// Number of sampled records with score ≥ `tau` — the length of the
    /// canonical prefix that is the estimator window at `tau`.
    pub fn cut_for(&self, tau: f64) -> usize {
        self.sorted_scores.partition_point(|&s| s >= tau)
    }

    /// O(1) moment sketch of the window `{canonical rank < cut}` — the
    /// inputs to the ratio-estimator precision bound at the corresponding
    /// threshold.
    pub fn window_sketch(&self, cut: usize) -> PairSketch {
        self.pair_prefix[cut]
    }

    /// The `(y, x) = (O·m, m)` pair at canonical rank `rank`.
    pub fn pair_at(&self, rank: usize) -> (f64, f64) {
        let pos = self.order[rank] as usize;
        let m = self.reweights[pos];
        let y = if self.labels[pos] { m } else { 0.0 };
        (y, m)
    }

    /// The split-indicator value of Algorithms 2 and 4 at canonical rank
    /// `rank` for the window boundary `cut`: `z1 = 1[rank < cut]·O·m`
    /// when `above`, `z2 = 1[rank ≥ cut]·O·m` otherwise.
    pub fn z_value(&self, rank: usize, cut: usize, above: bool) -> f64 {
        let pos = self.order[rank] as usize;
        if (rank < cut) == above && self.labels[pos] {
            self.reweights[pos]
        } else {
            0.0
        }
    }

    /// Moment sketches of the full-length split indicators `z1`/`z2` at
    /// window boundary `cut`.
    ///
    /// Fused form: `z1` is the canonical `y` prefix padded with `s − cut`
    /// zeros and `z2` the suffix padded with `cut` zeros, so both sketches
    /// come from **one** combined pass over the contiguous
    /// `y_canon` array — each element is folded into exactly one sketch
    /// and the padding collapses to
    /// [`SampleSketch::absorb_zeros`] — instead of two full passes through
    /// the order/label/reweight indirection. Bit-identical to sketching
    /// the materialized vectors of [`recall_split`](OracleSample::recall_split)
    /// (zeros contribute exactly nothing to the sums; the parity is pinned
    /// by the naive-reference tests).
    pub fn z_sketches(&self, cut: usize) -> (SampleSketch, SampleSketch) {
        let s = self.len();
        let mut z1 = SampleSketch::from_values(self.y_canon[..cut].iter().copied());
        z1.absorb_zeros(s - cut);
        let mut z2 = SampleSketch::from_values(self.y_canon[cut..].iter().copied());
        z2.absorb_zeros(cut);
        (z1, z2)
    }

    /// Reweighted empirical recall at threshold `tau` (Equation 11).
    /// Returns 1.0 when the sample has no positives (vacuous).
    /// O(log p) via the positive prefix sums.
    pub fn recall_at(&self, tau: f64) -> f64 {
        if self.total_positive_weight <= 0.0 {
            return 1.0;
        }
        let k = self.positive_scores.partition_point(|&s| s >= tau);
        self.positive_weight_prefix[k] / self.total_positive_weight
    }

    /// The paper's `max{τ : Recall_Sw(τ) ≥ γ}`.
    ///
    /// A binary search over the positives' cumulative (reweighted) mass in
    /// canonical order: returns the score at which cumulative recall first
    /// reaches `γ`. Returns `None` when the sample contains no positives —
    /// the caller decides the conservative fallback (RT selectors return
    /// `τ = 0`, i.e. the whole dataset).
    pub fn max_tau_for_recall(&self, gamma: f64) -> Option<f64> {
        let p = self.positives_desc.len();
        if p == 0 || self.total_positive_weight <= 0.0 {
            return None;
        }
        // γ above 1 (a conservative γ′ clamped by the caller) or exactly 1
        // requires every positive: τ = lowest positive score.
        let target = gamma.min(1.0) * self.total_positive_weight;
        // Tiny epsilon so γ = 1.0 is not defeated by rounding. The prefix
        // is nondecreasing, so the predicate is monotone.
        let k = self.positive_weight_prefix[1..].partition_point(|&acc| acc + 1e-12 < target);
        Some(self.positive_scores[k.min(p - 1)])
    }

    /// Paired `(O·m, m)` observations for the samples with score ≥ `tau` —
    /// the inputs to the ratio-estimator precision bound, materialized in
    /// canonical order. The sweep estimators use
    /// [`window_sketch`](OracleSample::window_sketch) instead; this
    /// allocating form remains for inspection, tests and the naive
    /// reference implementations.
    pub fn precision_pairs(&self, tau: f64) -> (Vec<f64>, Vec<f64>) {
        let cut = self.cut_for(tau);
        let mut ys = Vec::with_capacity(cut);
        let mut xs = Vec::with_capacity(cut);
        for rank in 0..cut {
            let (y, x) = self.pair_at(rank);
            ys.push(y);
            xs.push(x);
        }
        (ys, xs)
    }

    /// The split indicator samples of Algorithms 2 and 4:
    /// `z1 = 1[A ≥ τ]·O·m` and `z2 = 1[A < τ]·O·m`, each of full sample
    /// length, materialized in canonical order. The sweep estimators use
    /// [`z_sketches`](OracleSample::z_sketches) instead.
    pub fn recall_split(&self, tau: f64) -> (Vec<f64>, Vec<f64>) {
        let cut = self.cut_for(tau);
        let s = self.len();
        let z1: Vec<f64> = (0..s).map(|r| self.z_value(r, cut, true)).collect();
        let z2: Vec<f64> = (0..s).map(|r| self.z_value(r, cut, false)).collect();
        (z1, z2)
    }

    /// Candidate thresholds for the precision estimators: the sampled
    /// scores sorted ascending, taken at positions `step, 2·step, …`
    /// (1-indexed), as in Algorithms 3 and 5. Deduplicated and capped at
    /// the sample size. Reads the canonical index — no per-call sort.
    pub fn candidate_thresholds(&self, step: usize) -> Vec<f64> {
        assert!(step > 0, "candidate_thresholds: step must be > 0");
        let s = self.len();
        let mut out = Vec::new();
        let mut i = step;
        while i <= s {
            // Ascending position i (1-indexed) = descending position s−i.
            out.push(self.sorted_scores[s - i]);
            i += step;
        }
        out.dedup();
        out
    }
}

/// Draws `k` records (with replacement) from prebuilt sampling artifacts
/// and labels them, attaching the artifacts' reweighting factors.
/// Convenience used by all importance selectors.
///
/// The weighted sampler — the O(1)-draw alias table or the cold-start
/// CDF fallback, per the artifacts' build — comes ready-made from the
/// [`WeightArtifacts`](crate::prepared::WeightArtifacts) — typically a
/// [`PreparedDataset`](crate::prepared::PreparedDataset) cache hit — so
/// repeated queries pay O(k) draws, never an O(n) table rebuild.
pub fn draw_weighted<'d>(
    data: impl Into<Corpus<'d>>,
    artifacts: &WeightArtifacts,
    k: usize,
    oracle: &mut dyn Oracle,
    rng: &mut dyn RngCore,
) -> Result<OracleSample, SupgError> {
    let data = data.into();
    let sampler = artifacts.sampler();
    let indices: Vec<usize> = (0..k).map(|_| sampler.draw(rng)).collect();
    let factors: Vec<f64> = indices
        .iter()
        .map(|&i| artifacts.reweight_factor(i))
        .collect();
    OracleSample::label(data, indices, oracle, |pos| factors[pos])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ScoredDataset;
    use crate::oracle::CachedOracle;

    fn sample() -> OracleSample {
        // scores:    .9  .8  .7  .6  .5
        // labels:     +   -   +   +   -
        OracleSample::from_parts(
            vec![0, 1, 2, 3, 4],
            vec![0.9, 0.8, 0.7, 0.6, 0.5],
            vec![true, false, true, true, false],
            vec![1.0; 5],
        )
    }

    #[test]
    fn recall_curve_unweighted() {
        let s = sample();
        assert!((s.recall_at(0.95) - 0.0).abs() < 1e-12);
        assert!((s.recall_at(0.9) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall_at(0.7) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall_at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_tau_for_recall_unweighted() {
        let s = sample();
        assert_eq!(s.max_tau_for_recall(0.3), Some(0.9));
        assert_eq!(s.max_tau_for_recall(0.5), Some(0.7));
        assert_eq!(s.max_tau_for_recall(0.99), Some(0.6));
        assert_eq!(s.max_tau_for_recall(1.0), Some(0.6));
        // γ′ above 1 clamps to "keep every positive".
        assert_eq!(s.max_tau_for_recall(1.3), Some(0.6));
    }

    #[test]
    fn max_tau_respects_weights() {
        // Positive at 0.9 carries 3× the weight of the one at 0.6.
        let s =
            OracleSample::from_parts(vec![0, 1], vec![0.9, 0.6], vec![true, true], vec![3.0, 1.0]);
        assert_eq!(s.max_tau_for_recall(0.74), Some(0.9));
        assert_eq!(s.max_tau_for_recall(0.76), Some(0.6));
    }

    #[test]
    fn no_positives_cases() {
        let s = OracleSample::from_parts(vec![0], vec![0.5], vec![false], vec![1.0]);
        assert_eq!(s.max_tau_for_recall(0.9), None);
        assert_eq!(s.recall_at(0.4), 1.0);
        assert!(s.positive_indices().is_empty());
    }

    #[test]
    fn positive_indices_dedupe() {
        let s = OracleSample::from_parts(
            vec![7, 7, 3],
            vec![0.9, 0.9, 0.8],
            vec![true, true, true],
            vec![1.0; 3],
        );
        assert_eq!(s.positive_indices(), vec![3, 7]);
    }

    #[test]
    fn precision_pairs_filter_by_tau() {
        let s = sample();
        let (ys, xs) = s.precision_pairs(0.7);
        assert_eq!(xs.len(), 3);
        assert_eq!(ys.iter().sum::<f64>(), 2.0);
        let (ys, xs) = s.precision_pairs(2.0);
        assert!(ys.is_empty() && xs.is_empty());
    }

    #[test]
    fn recall_split_partitions_positive_mass() {
        let s = sample();
        let (z1, z2) = s.recall_split(0.7);
        assert_eq!(z1.len(), 5);
        let above: f64 = z1.iter().sum();
        let below: f64 = z2.iter().sum();
        assert_eq!(above, 2.0);
        assert_eq!(below, 1.0);
    }

    #[test]
    fn candidate_thresholds_every_step() {
        let s = sample();
        assert_eq!(s.candidate_thresholds(2), vec![0.6, 0.8]);
        assert_eq!(s.candidate_thresholds(1).len(), 5);
        assert_eq!(s.candidate_thresholds(10), Vec::<f64>::new());
    }

    #[test]
    fn canonical_order_is_stable_descending() {
        // Tied scores keep draw order in the canonical layout.
        let s = OracleSample::from_parts(
            vec![10, 11, 12, 13],
            vec![0.5, 0.9, 0.5, 0.9],
            vec![true, true, false, false],
            vec![1.0; 4],
        );
        assert_eq!(s.sorted_scores(), &[0.9, 0.9, 0.5, 0.5]);
        // Ranks: positions 1, 3 (tied at 0.9, draw order), then 0, 2.
        assert_eq!(s.pair_at(0), (1.0, 1.0)); // position 1, positive
        assert_eq!(s.pair_at(1), (0.0, 1.0)); // position 3, negative
        assert_eq!(s.pair_at(2), (1.0, 1.0)); // position 0, positive
        assert_eq!(s.pair_at(3), (0.0, 1.0)); // position 2, negative
    }

    #[test]
    fn window_sketch_matches_materialized_pairs() {
        let s = OracleSample::from_parts(
            vec![0, 1, 2, 3, 4, 5],
            vec![0.9, 0.2, 0.7, 0.6, 0.5, 0.7],
            vec![true, false, true, true, false, false],
            vec![1.5, 1.0, 2.0, 0.5, 1.0, 3.0],
        );
        for tau in [0.0, 0.2, 0.55, 0.7, 0.9, 1.1] {
            let cut = s.cut_for(tau);
            let (ys, xs) = s.precision_pairs(tau);
            assert_eq!(ys.len(), cut);
            let direct = PairSketch::from_pairs(ys.iter().copied().zip(xs.iter().copied()));
            assert_eq!(s.window_sketch(cut), direct, "tau={tau}");
        }
    }

    #[test]
    fn z_sketches_match_materialized_split() {
        let s = sample();
        let cut = s.cut_for(0.7);
        let (z1, z2) = s.recall_split(0.7);
        let (sk1, sk2) = s.z_sketches(cut);
        assert_eq!(sk1, SampleSketch::from_values(z1.iter().copied()));
        assert_eq!(sk2, SampleSketch::from_values(z2.iter().copied()));
    }

    #[test]
    fn labeling_through_oracle_consumes_budget_once_per_distinct() {
        let data = ScoredDataset::new(vec![0.2, 0.4, 0.6]).unwrap();
        let mut oracle = CachedOracle::from_labels(vec![false, true, false], 2);
        let s = OracleSample::label(&data, vec![1, 1, 2], &mut oracle, |_| 1.0).unwrap();
        assert_eq!(oracle.calls_used(), 2);
        assert_eq!(s.positive_count(), 2); // record 1 sampled twice
        assert_eq!(s.positive_indices(), vec![1]);
    }
}
