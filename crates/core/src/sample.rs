//! The oracle-labeled sample shared by all threshold selectors.

use rand::RngCore;

use crate::data::ScoredDataset;
use crate::error::SupgError;
use crate::oracle::{BatchOracle, Oracle};

/// A sample of records drawn for oracle labeling, with proxy scores, labels
/// and importance-reweighting factors `m(x) = u(x)/w(x)` (all 1 under
/// uniform sampling).
///
/// The paper's reweighted empirical recall (Equation 11) over this sample is
///
/// ```text
/// Recall_Sw(τ) = Σ 1[A(x) ≥ τ]·O(x)·m(x) / Σ O(x)·m(x)
/// ```
///
/// and the selectors' core subroutine `max{τ : Recall_Sw(τ) ≥ γ}` is
/// implemented here once, over the positives sorted by descending score.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleSample {
    indices: Vec<usize>,
    scores: Vec<f64>,
    labels: Vec<bool>,
    reweights: Vec<f64>,
    /// Positions of positive samples, sorted by descending score.
    positives_desc: Vec<usize>,
    total_positive_weight: f64,
}

impl OracleSample {
    /// Labels `indices` through `oracle` as one batched request and
    /// assembles the sample. The oracle chunks the request per its
    /// configured [`RuntimeConfig`](crate::runtime::RuntimeConfig) and may
    /// label cache misses on the [`crate::runtime`] worker pool.
    ///
    /// `reweight` maps a *position in `indices`* to the importance factor of
    /// the drawn record (uniform sampling passes `|_| 1.0`).
    ///
    /// # Errors
    /// Propagates oracle errors (budget exhaustion, bad indices).
    pub fn label(
        data: &ScoredDataset,
        indices: Vec<usize>,
        oracle: &mut dyn Oracle,
        mut reweight: impl FnMut(usize) -> f64,
    ) -> Result<Self, SupgError> {
        let labels = oracle.label_batch(&indices)?;
        let mut scores = Vec::with_capacity(indices.len());
        let mut reweights = Vec::with_capacity(indices.len());
        for (pos, &idx) in indices.iter().enumerate() {
            scores.push(data.score(idx));
            reweights.push(reweight(pos));
        }
        Ok(Self::from_parts(indices, scores, labels, reweights))
    }

    /// Assembles a sample from pre-labeled parts (used by tests and by the
    /// two-stage estimator, which reuses stage-1 labels).
    ///
    /// # Panics
    /// Panics when column lengths disagree.
    pub fn from_parts(
        indices: Vec<usize>,
        scores: Vec<f64>,
        labels: Vec<bool>,
        reweights: Vec<f64>,
    ) -> Self {
        assert!(
            indices.len() == scores.len()
                && indices.len() == labels.len()
                && indices.len() == reweights.len(),
            "OracleSample: column length mismatch"
        );
        let mut positives_desc: Vec<usize> = (0..indices.len()).filter(|&i| labels[i]).collect();
        positives_desc
            .sort_unstable_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        let total_positive_weight = positives_desc.iter().map(|&i| reweights[i]).sum();
        Self {
            indices,
            scores,
            labels,
            reweights,
            positives_desc,
            total_positive_weight,
        }
    }

    /// Number of sampled records (with multiplicity).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no records were sampled.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Dataset indices of the sampled records (with multiplicity).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Proxy scores of the sampled records.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Oracle labels of the sampled records.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Importance factors `m(x)` of the sampled records.
    pub fn reweights(&self) -> &[f64] {
        &self.reweights
    }

    /// Number of positive samples.
    pub fn positive_count(&self) -> usize {
        self.positives_desc.len()
    }

    /// Dataset indices of the positively labeled samples (deduplicated,
    /// ascending) — the `R1` component of Algorithm 1.
    pub fn positive_indices(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .positives_desc
            .iter()
            .map(|&pos| self.indices[pos])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reweighted empirical recall at threshold `tau` (Equation 11).
    /// Returns 1.0 when the sample has no positives (vacuous).
    pub fn recall_at(&self, tau: f64) -> f64 {
        if self.total_positive_weight <= 0.0 {
            return 1.0;
        }
        let above: f64 = self
            .positives_desc
            .iter()
            .take_while(|&&pos| self.scores[pos] >= tau)
            .map(|&pos| self.reweights[pos])
            .sum();
        above / self.total_positive_weight
    }

    /// The paper's `max{τ : Recall_Sw(τ) ≥ γ}`.
    ///
    /// Walks the positives in descending score order and returns the score
    /// at which the cumulative (reweighted) recall first reaches `γ`.
    /// Returns `None` when the sample contains no positives — the caller
    /// decides the conservative fallback (RT selectors return `τ = 0`,
    /// i.e. the whole dataset).
    pub fn max_tau_for_recall(&self, gamma: f64) -> Option<f64> {
        if self.positives_desc.is_empty() || self.total_positive_weight <= 0.0 {
            return None;
        }
        // γ above 1 (a conservative γ′ clamped by the caller) or exactly 1
        // requires every positive: τ = lowest positive score.
        let target = gamma.min(1.0) * self.total_positive_weight;
        let mut acc = 0.0;
        for &pos in &self.positives_desc {
            acc += self.reweights[pos];
            // Tiny epsilon so γ = 1.0 is not defeated by rounding.
            if acc + 1e-12 >= target {
                return Some(self.scores[pos]);
            }
        }
        Some(self.scores[*self.positives_desc.last().expect("non-empty")])
    }

    /// Paired `(O·m, m)` observations for the samples with score ≥ `tau` —
    /// the inputs to the ratio-estimator precision bound.
    pub fn precision_pairs(&self, tau: f64) -> (Vec<f64>, Vec<f64>) {
        let mut ys = Vec::new();
        let mut xs = Vec::new();
        for i in 0..self.len() {
            if self.scores[i] >= tau {
                ys.push(if self.labels[i] {
                    self.reweights[i]
                } else {
                    0.0
                });
                xs.push(self.reweights[i]);
            }
        }
        (ys, xs)
    }

    /// The split indicator samples of Algorithms 2 and 4:
    /// `z1 = 1[A ≥ τ]·O·m` and `z2 = 1[A < τ]·O·m`, each of full sample
    /// length.
    pub fn recall_split(&self, tau: f64) -> (Vec<f64>, Vec<f64>) {
        let mut z1 = Vec::with_capacity(self.len());
        let mut z2 = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            let o_m = if self.labels[i] {
                self.reweights[i]
            } else {
                0.0
            };
            if self.scores[i] >= tau {
                z1.push(o_m);
                z2.push(0.0);
            } else {
                z1.push(0.0);
                z2.push(o_m);
            }
        }
        (z1, z2)
    }

    /// Candidate thresholds for the precision estimators: the sampled
    /// scores sorted ascending, taken at positions `step, 2·step, …`
    /// (1-indexed), as in Algorithms 3 and 5. Deduplicated and capped at
    /// the sample size.
    pub fn candidate_thresholds(&self, step: usize) -> Vec<f64> {
        assert!(step > 0, "candidate_thresholds: step must be > 0");
        let mut sorted = self.scores.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let mut out = Vec::new();
        let mut i = step;
        while i <= sorted.len() {
            out.push(sorted[i - 1]);
            i += step;
        }
        out.dedup();
        out
    }
}

/// Draws `k` records (with replacement) from an alias sampler and labels
/// them, attaching the sampler's reweighting factors. Convenience used by
/// all importance selectors.
pub fn draw_weighted(
    data: &ScoredDataset,
    weights: &supg_sampling::ImportanceWeights,
    k: usize,
    oracle: &mut dyn Oracle,
    rng: &mut dyn RngCore,
) -> Result<OracleSample, SupgError> {
    let sampler = weights.build_sampler();
    let indices: Vec<usize> = (0..k).map(|_| sampler.sample(rng)).collect();
    let factors: Vec<f64> = indices
        .iter()
        .map(|&i| weights.reweight_factor(i))
        .collect();
    OracleSample::label(data, indices, oracle, |pos| factors[pos])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CachedOracle;

    fn sample() -> OracleSample {
        // scores:    .9  .8  .7  .6  .5
        // labels:     +   -   +   +   -
        OracleSample::from_parts(
            vec![0, 1, 2, 3, 4],
            vec![0.9, 0.8, 0.7, 0.6, 0.5],
            vec![true, false, true, true, false],
            vec![1.0; 5],
        )
    }

    #[test]
    fn recall_curve_unweighted() {
        let s = sample();
        assert!((s.recall_at(0.95) - 0.0).abs() < 1e-12);
        assert!((s.recall_at(0.9) - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall_at(0.7) - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall_at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_tau_for_recall_unweighted() {
        let s = sample();
        assert_eq!(s.max_tau_for_recall(0.3), Some(0.9));
        assert_eq!(s.max_tau_for_recall(0.5), Some(0.7));
        assert_eq!(s.max_tau_for_recall(0.99), Some(0.6));
        assert_eq!(s.max_tau_for_recall(1.0), Some(0.6));
        // γ′ above 1 clamps to "keep every positive".
        assert_eq!(s.max_tau_for_recall(1.3), Some(0.6));
    }

    #[test]
    fn max_tau_respects_weights() {
        // Positive at 0.9 carries 3× the weight of the one at 0.6.
        let s =
            OracleSample::from_parts(vec![0, 1], vec![0.9, 0.6], vec![true, true], vec![3.0, 1.0]);
        assert_eq!(s.max_tau_for_recall(0.74), Some(0.9));
        assert_eq!(s.max_tau_for_recall(0.76), Some(0.6));
    }

    #[test]
    fn no_positives_cases() {
        let s = OracleSample::from_parts(vec![0], vec![0.5], vec![false], vec![1.0]);
        assert_eq!(s.max_tau_for_recall(0.9), None);
        assert_eq!(s.recall_at(0.4), 1.0);
        assert!(s.positive_indices().is_empty());
    }

    #[test]
    fn positive_indices_dedupe() {
        let s = OracleSample::from_parts(
            vec![7, 7, 3],
            vec![0.9, 0.9, 0.8],
            vec![true, true, true],
            vec![1.0; 3],
        );
        assert_eq!(s.positive_indices(), vec![3, 7]);
    }

    #[test]
    fn precision_pairs_filter_by_tau() {
        let s = sample();
        let (ys, xs) = s.precision_pairs(0.7);
        assert_eq!(xs.len(), 3);
        assert_eq!(ys.iter().sum::<f64>(), 2.0);
        let (ys, xs) = s.precision_pairs(2.0);
        assert!(ys.is_empty() && xs.is_empty());
    }

    #[test]
    fn recall_split_partitions_positive_mass() {
        let s = sample();
        let (z1, z2) = s.recall_split(0.7);
        assert_eq!(z1.len(), 5);
        let above: f64 = z1.iter().sum();
        let below: f64 = z2.iter().sum();
        assert_eq!(above, 2.0);
        assert_eq!(below, 1.0);
    }

    #[test]
    fn candidate_thresholds_every_step() {
        let s = sample();
        assert_eq!(s.candidate_thresholds(2), vec![0.6, 0.8]);
        assert_eq!(s.candidate_thresholds(1).len(), 5);
        assert_eq!(s.candidate_thresholds(10), Vec::<f64>::new());
    }

    #[test]
    fn labeling_through_oracle_consumes_budget_once_per_distinct() {
        let data = ScoredDataset::new(vec![0.2, 0.4, 0.6]).unwrap();
        let mut oracle = CachedOracle::from_labels(vec![false, true, false], 2);
        let s = OracleSample::label(&data, vec![1, 1, 2], &mut oracle, |_| 1.0).unwrap();
        assert_eq!(oracle.calls_used(), 2);
        assert_eq!(s.positive_count(), 2); // record 1 sampled twice
        assert_eq!(s.positive_indices(), vec![1]);
    }
}
