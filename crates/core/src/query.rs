//! Query semantics for approximate selection (paper §3).

use crate::error::SupgError;

/// Which accuracy metric the query guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// Recall-target (RT) query: `Pr[Recall(R) ≥ γ] ≥ 1 − δ`. Result quality
    /// is the achieved precision (smaller result sets are better).
    Recall,
    /// Precision-target (PT) query: `Pr[Precision(R) ≥ γ] ≥ 1 − δ`. Result
    /// quality is the achieved recall (larger valid result sets are better).
    Precision,
}

impl TargetKind {
    /// Lower-case keyword as used in the SQL syntax (`RECALL`/`PRECISION`).
    pub fn keyword(&self) -> &'static str {
        match self {
            TargetKind::Recall => "RECALL",
            TargetKind::Precision => "PRECISION",
        }
    }
}

/// A validated approximate-selection query specification.
///
/// Mirrors the paper's Figure 3 syntax: a target metric and level `γ`, a
/// failure probability `δ` (the paper's `WITH PROBABILITY p` is `1 − δ`),
/// and a hard oracle budget `s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxQuery {
    target: TargetKind,
    gamma: f64,
    delta: f64,
    budget: usize,
}

impl ApproxQuery {
    /// Creates a validated query.
    ///
    /// # Errors
    /// Returns [`SupgError::InvalidQuery`] unless `γ ∈ (0, 1]`,
    /// `δ ∈ (0, 1)` and `budget ≥ 2` (the estimators need at least a
    /// two-element sample to form a variance).
    pub fn new(
        target: TargetKind,
        gamma: f64,
        delta: f64,
        budget: usize,
    ) -> Result<Self, SupgError> {
        if !(gamma > 0.0 && gamma <= 1.0) {
            return Err(SupgError::InvalidQuery(format!(
                "target gamma={gamma} must be in (0, 1]"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SupgError::InvalidQuery(format!(
                "failure probability delta={delta} must be in (0, 1)"
            )));
        }
        if budget < 2 {
            return Err(SupgError::InvalidQuery(format!(
                "oracle budget {budget} must be at least 2"
            )));
        }
        Ok(Self {
            target,
            gamma,
            delta,
            budget,
        })
    }

    /// Convenience constructor for an RT query.
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`ApproxQuery::new`] for fallible
    /// construction.
    pub fn recall_target(gamma: f64, delta: f64, budget: usize) -> Self {
        Self::new(TargetKind::Recall, gamma, delta, budget).expect("valid RT query")
    }

    /// Convenience constructor for a PT query.
    ///
    /// # Panics
    /// Panics on invalid parameters; use [`ApproxQuery::new`] for fallible
    /// construction.
    pub fn precision_target(gamma: f64, delta: f64, budget: usize) -> Self {
        Self::new(TargetKind::Precision, gamma, delta, budget).expect("valid PT query")
    }

    /// The guaranteed metric.
    pub fn target(&self) -> TargetKind {
        self.target
    }

    /// Target level `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Failure probability `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Success probability `1 − δ` (the paper's `WITH PROBABILITY`).
    pub fn success_probability(&self) -> f64 {
        1.0 - self.delta
    }

    /// Oracle call budget `s`.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The same query with a different budget (used by the JT pipeline).
    pub fn with_budget(&self, budget: usize) -> Result<Self, SupgError> {
        Self::new(self.target, self.gamma, self.delta, budget)
    }
}

/// A joint-target (JT) query: both precision and recall targets, no oracle
/// budget (appendix A of the paper — the budget cannot be bounded a priori).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointQuery {
    recall_gamma: f64,
    precision_gamma: f64,
    delta: f64,
}

impl JointQuery {
    /// Creates a validated JT query.
    ///
    /// # Errors
    /// Returns [`SupgError::InvalidQuery`] on out-of-range parameters.
    pub fn new(recall_gamma: f64, precision_gamma: f64, delta: f64) -> Result<Self, SupgError> {
        if !(recall_gamma > 0.0 && recall_gamma <= 1.0) {
            return Err(SupgError::InvalidQuery(format!(
                "recall target {recall_gamma} must be in (0, 1]"
            )));
        }
        if !(precision_gamma > 0.0 && precision_gamma <= 1.0) {
            return Err(SupgError::InvalidQuery(format!(
                "precision target {precision_gamma} must be in (0, 1]"
            )));
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(SupgError::InvalidQuery(format!(
                "failure probability delta={delta} must be in (0, 1)"
            )));
        }
        Ok(Self {
            recall_gamma,
            precision_gamma,
            delta,
        })
    }

    /// Recall target `γ_r`.
    pub fn recall_gamma(&self) -> f64 {
        self.recall_gamma
    }

    /// Precision target `γ_p`.
    pub fn precision_gamma(&self) -> f64 {
        self.precision_gamma
    }

    /// Failure probability `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_queries_construct() {
        let q = ApproxQuery::recall_target(0.9, 0.05, 1000);
        assert_eq!(q.target(), TargetKind::Recall);
        assert_eq!(q.gamma(), 0.9);
        assert_eq!(q.delta(), 0.05);
        assert_eq!(q.budget(), 1000);
        assert!((q.success_probability() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ApproxQuery::new(TargetKind::Recall, 0.0, 0.05, 10).is_err());
        assert!(ApproxQuery::new(TargetKind::Recall, 1.1, 0.05, 10).is_err());
        assert!(ApproxQuery::new(TargetKind::Recall, 0.9, 0.0, 10).is_err());
        assert!(ApproxQuery::new(TargetKind::Recall, 0.9, 1.0, 10).is_err());
        assert!(ApproxQuery::new(TargetKind::Recall, 0.9, 0.05, 1).is_err());
        assert!(ApproxQuery::new(TargetKind::Precision, 1.0, 0.5, 2).is_ok());
    }

    #[test]
    fn with_budget_preserves_other_fields() {
        let q = ApproxQuery::precision_target(0.8, 0.1, 500);
        let q2 = q.with_budget(2000).unwrap();
        assert_eq!(q2.budget(), 2000);
        assert_eq!(q2.gamma(), 0.8);
        assert_eq!(q2.target(), TargetKind::Precision);
    }

    #[test]
    fn joint_query_validation() {
        assert!(JointQuery::new(0.9, 0.9, 0.05).is_ok());
        assert!(JointQuery::new(0.0, 0.9, 0.05).is_err());
        assert!(JointQuery::new(0.9, 1.5, 0.05).is_err());
        assert!(JointQuery::new(0.9, 0.9, 0.0).is_err());
    }

    #[test]
    fn target_keywords() {
        assert_eq!(TargetKind::Recall.keyword(), "RECALL");
        assert_eq!(TargetKind::Precision.keyword(), "PRECISION");
    }
}
