//! Batched, multi-threaded execution runtime for oracle labeling.
//!
//! The paper's premise is that the oracle — a human labeler or a heavyweight
//! DNN — dominates query cost, and real model-serving oracles are
//! batch-native: a GPU answers a batch of records in roughly the time it
//! answers one. This module provides the execution substrate that lets the
//! whole pipeline exploit that:
//!
//! * [`RuntimeConfig`] — the two knobs, `parallelism` (worker threads) and
//!   `batch_size` (records per batch request), surfaced on
//!   [`SupgSession`](crate::session::SupgSession) as
//!   `.parallelism(n).batch_size(b)` and on the query engine's
//!   `EngineConfig`.
//! * [`parallel_map`] — a scoped worker pool (plain `std::thread::scope`,
//!   no external dependencies) that chunks a work list into batches and
//!   fans the batches out over `parallelism` workers, reassembling results
//!   **in input order**.
//! * [`split_seed`] — SplitMix64 stream splitting for deriving independent
//!   per-index RNG seeds, the pattern every parallel caller must use
//!   instead of sharing one sequential stream.
//!
//! ## Determinism contract
//!
//! Results must be bit-for-bit identical for every `parallelism` and
//! `batch_size` setting, and `parallelism = 1` must reproduce the plain
//! sequential path exactly. The design enforces this by construction:
//!
//! 1. **Sampling stays sequential.** All random draws happen on the session
//!    thread from the session's seeded RNG, in the same order as the
//!    sequential pipeline. Only oracle *labeling* — a pure function of the
//!    record index — is fanned out.
//! 2. **Placement by index.** [`parallel_map`] assigns batches to workers
//!    dynamically (work stealing over an atomic cursor), but each result is
//!    written back at its input position, so the output vector never
//!    depends on scheduling.
//! 3. **Streams split by index.** Code that *does* need randomness inside
//!    parallel work (e.g. the experiment harness's trial runner) derives a
//!    seed per work item with [`split_seed`]`(base, index)` rather than
//!    consuming a shared stream in call order.
//!
//! Batch-native oracle sources
//! ([`CachedOracle::parallel`](crate::oracle::CachedOracle::parallel)) must
//! be pure functions of the record index — label value independent of call
//! order and interleaving — for the contract to hold; the trait docs on
//! [`BatchOracle`](crate::oracle::BatchOracle) restate this obligation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Default records per batch request when none is configured.
pub const DEFAULT_BATCH_SIZE: usize = 64;

/// Execution knobs for batched oracle labeling.
///
/// The default is fully sequential (`parallelism = 1`), which is
/// guaranteed bit-for-bit identical to the historical one-record-at-a-time
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads labeling batches (min 1).
    pub parallelism: usize,
    /// Records per batch request handed to one worker at a time (min 1).
    pub batch_size: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

impl RuntimeConfig {
    /// The sequential configuration: one worker, default batch size.
    pub fn sequential() -> Self {
        Self {
            parallelism: 1,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Config with `parallelism` workers (clamped to ≥ 1).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Config with `batch_size` records per batch request (clamped to ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// True when this config runs on the calling thread without spawning.
    pub fn is_sequential(&self) -> bool {
        self.parallelism <= 1
    }
}

/// Applies `f` to every item, chunking the input into batches of
/// `cfg.batch_size` and executing the batches on a scoped pool of
/// `cfg.parallelism` worker threads.
///
/// The output is always in input order, and — provided `f` is a pure
/// function of its argument — identical for every `parallelism` /
/// `batch_size` setting. With `parallelism = 1` no thread is spawned and
/// the items are mapped on the calling thread in order, exactly like
/// `items.iter().map(f).collect()`.
///
/// # Panics
/// Propagates panics from `f` (workers are joined before returning).
pub fn parallel_map<T, R, F>(cfg: &RuntimeConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let batch = cfg.batch_size.max(1);
    let n_batches = items.len().div_ceil(batch);
    let workers = cfg.parallelism.max(1).min(n_batches.max(1));
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    // Work stealing over an atomic batch cursor: assignment of batches to
    // workers is scheduling-dependent, but every result lands at its input
    // position, so the assembled output is not.
    let cursor = AtomicUsize::new(0);
    let mut pieces: Vec<(usize, Vec<R>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= n_batches {
                            break;
                        }
                        let start = b * batch;
                        let end = (start + batch).min(items.len());
                        let labels: Vec<R> = items[start..end].iter().map(&f).collect();
                        done.push((start, labels));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                // Re-raise a worker panic with its original payload so the
                // parallel path is as debuggable as the sequential one.
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items.len());
    for (_, mut chunk) in pieces {
        out.append(&mut chunk);
    }
    out
}

/// Inputs below this size are not worth dispatching to the pool for pure
/// CPU work — the chunk/merge bookkeeping would cost more than it saves.
/// Shared by every CPU-bound chunked stage (rank-index build, weight
/// feeds).
pub const MIN_PARALLEL_INPUT: usize = 1 << 14;

/// Number of workers a **CPU-bound** parallel stage should actually use:
/// `requested` clamped to the machine's available cores (≥ 1). Oracle
/// labeling deliberately does not clamp — it may be latency-bound and
/// profit from over-subscription — but for pure CPU work extra threads
/// only add dispatch overhead.
pub fn cpu_workers(requested: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    requested.max(1).min(cores)
}

/// The machine's effective core count: what [`cpu_workers`] clamps to,
/// and the ceiling the adaptive planner ([`crate::plan`]) plans against.
/// Equivalent to `cpu_workers(usize::MAX)`.
pub fn effective_cores() -> usize {
    cpu_workers(usize::MAX)
}

/// Splits `0..n` into `parts` contiguous, non-empty ranges — the
/// deterministic chunk layout of the CPU-bound chunked stages. The layout
/// never influences results (chunked stages are element-wise maps or
/// total-order merges); it only balances work.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = n.div_ceil(parts.max(1)).max(1);
    (0..parts.max(1))
        .map(|w| (w * chunk).min(n)..((w + 1) * chunk).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// The chunk-dispatch scaffold shared by every CPU-bound chunked stage
/// (rank-index chunk sorts, weight-transform and alias feeds): split
/// `0..n` into `parts` ranges and map each on the pool, one range per
/// worker, returning the per-chunk results in range order. The caller
/// combines the pieces (concatenate, merge, …) — and decides *whether*
/// to dispatch at all ([`cpu_workers`], [`MIN_PARALLEL_INPUT`]).
pub fn map_chunks<R, F>(n: usize, parts: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(n, parts);
    let pool = RuntimeConfig::default()
        .with_parallelism(ranges.len())
        .with_batch_size(1);
    parallel_map(&pool, &ranges, |range| f(range.clone()))
}

/// Derives an independent RNG seed for work item `index` from a base seed
/// (SplitMix64 finalizer over the pair).
///
/// Parallel code must split per-item streams **by index**, never by call
/// order: `split_seed(base, i)` gives item `i` the same stream no matter
/// which worker processes it or when, which is what keeps multi-threaded
/// runs deterministic. The experiment harness seeds trial `i` of a run
/// this way.
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// [`split_seed`] mapped to a uniform float in `[0, 1)` — the per-index
/// coin the deterministic fault-injection layer ([`crate::fault`]) and
/// seeded-jitter backoff flip. Uses the top 53 bits of the split stream,
/// so the value is an exact dyadic rational identical on every platform.
pub fn split_unit(base: u64, index: u64) -> f64 {
    (split_seed(base, index) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_config_is_default_and_clamps() {
        assert_eq!(RuntimeConfig::default(), RuntimeConfig::sequential());
        let cfg = RuntimeConfig::default()
            .with_parallelism(0)
            .with_batch_size(0);
        assert_eq!(cfg.parallelism, 1);
        assert_eq!(cfg.batch_size, 1);
        assert!(cfg.is_sequential());
        assert!(!RuntimeConfig::default().with_parallelism(4).is_sequential());
    }

    #[test]
    fn split_unit_is_uniform_enough_and_in_range() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| split_unit(42, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        for i in 0..n {
            let u = split_unit(42, i);
            assert!((0.0..1.0).contains(&u));
            // Pure function of (base, index): stable across calls.
            assert_eq!(u.to_bits(), split_unit(42, i).to_bits());
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..1_000).collect();
        for parallelism in [1, 2, 3, 8] {
            for batch_size in [1, 7, 64, 5_000] {
                let cfg = RuntimeConfig::default()
                    .with_parallelism(parallelism)
                    .with_batch_size(batch_size);
                let out = parallel_map(&cfg, &items, |&i| i * 2);
                assert_eq!(
                    out,
                    items.iter().map(|&i| i * 2).collect::<Vec<_>>(),
                    "parallelism={parallelism} batch_size={batch_size}"
                );
            }
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let cfg = RuntimeConfig::default().with_parallelism(8);
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&cfg, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&cfg, &[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn parallel_map_spawns_workers_off_the_calling_thread() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let cfg = RuntimeConfig::default()
            .with_parallelism(4)
            .with_batch_size(1);
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&cfg, &items, |&i| {
            // Slow items force the batches to overlap across workers.
            thread::sleep(std::time::Duration::from_millis(1));
            seen.lock().unwrap().insert(thread::current().id());
            i
        });
        assert_eq!(out, items);
        let seen = seen.lock().unwrap();
        // parallelism > 1 always labels on pool workers, never inline.
        assert!(!seen.contains(&thread::current().id()));
        assert!(!seen.is_empty());
    }

    #[test]
    fn sequential_map_stays_on_the_calling_thread() {
        let cfg = RuntimeConfig::default().with_parallelism(1);
        let caller = thread::current().id();
        let out = parallel_map(&cfg, &[1, 2, 3], |&i| {
            assert_eq!(thread::current().id(), caller);
            i + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn split_seed_streams_are_index_sensitive() {
        let mut seeds: Vec<u64> = (0..1_000).map(|i| split_seed(7, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1_000);
        // And base-sensitive.
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }
}
