//! The unified SUPG query session: one fluent, validating entry point for
//! recall-target (RT), precision-target (PT) and joint-target (JT)
//! queries.
//!
//! The paper's Algorithm 1 is a single pipeline — sample, estimate `τ`,
//! union the labeled positives with the threshold set — and this module
//! exposes exactly one way to run it:
//!
//! ```
//! use supg_core::{CachedOracle, ScoredDataset, SelectorKind, SupgSession};
//!
//! let scores: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
//! let labels: Vec<bool> = scores.iter().map(|&s| s > 0.9).collect();
//! let dataset = ScoredDataset::new(scores).unwrap();
//! let mut oracle = CachedOracle::from_labels(labels, 1_000);
//!
//! let outcome = SupgSession::over(&dataset)
//!     .recall(0.9)
//!     .delta(0.05)
//!     .budget(1_000)
//!     .selector(SelectorKind::ImportanceSampling)
//!     .seed(7)
//!     .run(&mut oracle)
//!     .unwrap();
//! assert_eq!(outcome.selector, "IS-CI-R");
//! assert!(outcome.oracle_calls <= 1_000);
//! ```
//!
//! Joint-target queries go through the same builder — set both targets and
//! switch on joint mode with the stage budget of the appendix-A pipeline:
//!
//! ```
//! # use supg_core::{CachedOracle, ScoredDataset, SelectorKind, SupgSession};
//! # let scores: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64 / 100.0).collect();
//! # let labels: Vec<bool> = scores.iter().map(|&s| s > 0.9).collect();
//! # let dataset = ScoredDataset::new(scores).unwrap();
//! let mut oracle = CachedOracle::from_labels(labels, 0);
//! let outcome = SupgSession::over(&dataset)
//!     .recall(0.8)
//!     .precision(0.9)
//!     .joint(500)
//!     .run(&mut oracle)
//!     .unwrap();
//! assert!(outcome.joint);
//! assert_eq!(outcome.oracle_calls, outcome.stage_calls + outcome.filter_calls);
//! ```
//!
//! Algorithms are named by [`SelectorKind`] — the paper identifier is
//! derived from the kind × target-kind registry (`U-CI-R`, `IS-CI-P`, …)
//! — and determinism is configured once on the session ([`SupgSession::seed`])
//! instead of threading an RNG through every call.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::data::ScoredDataset;
use crate::error::SupgError;
use crate::executor::{ResultView, SelectionResult};
use crate::oracle::{labeling_clock, BatchOracle, CachedOracle, Oracle};
use crate::plan::{CalibrationProfile, Plan, PlanSignals, Planner};
use crate::prepared::{DataView, PreparedDataset, QueryProbe, RecipeState, SamplerStrategy};
use crate::query::{ApproxQuery, JointQuery, TargetKind};
use crate::runtime::RuntimeConfig;
use crate::segment::{Corpus, SegmentedDataset};
use crate::selectors::{
    ImportancePrecision, ImportanceRecall, SelectorConfig, ThresholdSelector, TwoStagePrecision,
    UniformNoCiPrecision, UniformNoCiRecall, UniformPrecision, UniformRecall,
};

/// Default RNG seed of a session that never called [`SupgSession::seed`].
pub const DEFAULT_SEED: u64 = 0x5097_2020;

/// Stage budget of the JT pipeline's recall stage.
pub const DEFAULT_JT_STAGE_BUDGET: usize = 1_000;

/// The threshold-estimation algorithm families of the paper, independent of
/// the query's target kind. The registry maps a `(SelectorKind,
/// TargetKind)` pair to the concrete algorithm and its paper identifier:
///
/// | kind | RT | PT |
/// |---|---|---|
/// | [`UniformNoCi`](SelectorKind::UniformNoCi) | `U-NoCI-R` | `U-NoCI-P` |
/// | [`Uniform`](SelectorKind::Uniform) | `U-CI-R` | `U-CI-P` |
/// | [`ImportanceSampling`](SelectorKind::ImportanceSampling) | `IS-CI-R` | `IS-CI-P-1stage` |
/// | [`TwoStage`](SelectorKind::TwoStage) | — | `IS-CI-P` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Guarantee-free uniform baseline of prior systems (§5.1).
    UniformNoCi,
    /// Uniform sampling with confidence intervals (Algorithms 2–3).
    Uniform,
    /// Importance sampling: Algorithm 4 for RT, the one-stage Figure-7
    /// estimator for PT.
    ImportanceSampling,
    /// The two-stage importance precision estimator (Algorithm 5) — the
    /// paper's `IS-CI-P`. Precision targets only.
    TwoStage,
}

impl SelectorKind {
    /// Every kind, in paper order.
    pub const ALL: [SelectorKind; 4] = [
        SelectorKind::UniformNoCi,
        SelectorKind::Uniform,
        SelectorKind::ImportanceSampling,
        SelectorKind::TwoStage,
    ];

    /// Whether this kind can answer queries with the given target
    /// (derived from [`paper_name`](SelectorKind::paper_name), the
    /// registry's single source of truth).
    pub fn supports(self, target: TargetKind) -> bool {
        self.paper_name(target).is_ok()
    }

    /// Whether the built selector carries the paper's `1 − δ` guarantee.
    pub fn guaranteed(self) -> bool {
        self != SelectorKind::UniformNoCi
    }

    /// The paper's recommended member of this family for the given
    /// target: identity everywhere except `ImportanceSampling` ×
    /// precision, where the SUPG configuration is the two-stage
    /// `IS-CI-P` (Algorithm 5) rather than the one-stage Figure-7
    /// ablation. Sessions and the engine apply this when the caller asks
    /// for a *default* rather than a specific algorithm.
    pub fn paper_family_default(self, target: TargetKind) -> SelectorKind {
        match (self, target) {
            (SelectorKind::ImportanceSampling, TargetKind::Precision) => SelectorKind::TwoStage,
            _ => self,
        }
    }

    /// The paper identifier of the `(kind, target)` algorithm (the name
    /// reported by [`QueryOutcome::selector`]).
    ///
    /// # Errors
    /// [`SupgError::UnsupportedSelector`] for combinations outside the
    /// registry (two-stage recall).
    pub fn paper_name(self, target: TargetKind) -> Result<&'static str, SupgError> {
        Ok(match (self, target) {
            (SelectorKind::UniformNoCi, TargetKind::Recall) => "U-NoCI-R",
            (SelectorKind::UniformNoCi, TargetKind::Precision) => "U-NoCI-P",
            (SelectorKind::Uniform, TargetKind::Recall) => "U-CI-R",
            (SelectorKind::Uniform, TargetKind::Precision) => "U-CI-P",
            (SelectorKind::ImportanceSampling, TargetKind::Recall) => "IS-CI-R",
            (SelectorKind::ImportanceSampling, TargetKind::Precision) => "IS-CI-P-1stage",
            (SelectorKind::TwoStage, TargetKind::Precision) => "IS-CI-P",
            (SelectorKind::TwoStage, TargetKind::Recall) => {
                return Err(SupgError::UnsupportedSelector {
                    selector: "TwoStage",
                    target: TargetKind::Recall,
                })
            }
        })
    }

    /// Every `(kind, target)` pair the registry has an algorithm for, in
    /// paper order — the single source of truth for enumeration over the
    /// registry.
    pub fn registry() -> impl Iterator<Item = (SelectorKind, TargetKind)> {
        SelectorKind::ALL
            .into_iter()
            .flat_map(|kind| {
                [TargetKind::Recall, TargetKind::Precision]
                    .into_iter()
                    .map(move |target| (kind, target))
            })
            .filter(|&(kind, target)| kind.supports(target))
    }

    /// Looks a kind/target pair up by its paper identifier
    /// (`"IS-CI-R"` → `(ImportanceSampling, Recall)`).
    pub fn from_paper_name(name: &str) -> Option<(SelectorKind, TargetKind)> {
        Self::registry().find(|&(kind, target)| kind.paper_name(target) == Ok(name))
    }

    /// Builds the concrete threshold selector for this kind and target —
    /// the registry behind [`SupgSession`] and the query engine.
    ///
    /// # Errors
    /// [`SupgError::UnsupportedSelector`] for combinations outside the
    /// registry (two-stage recall).
    pub fn build(
        self,
        target: TargetKind,
        cfg: SelectorConfig,
    ) -> Result<Box<dyn ThresholdSelector + Send + Sync>, SupgError> {
        Ok(match (self, target) {
            (SelectorKind::UniformNoCi, TargetKind::Recall) => Box::new(UniformNoCiRecall),
            (SelectorKind::UniformNoCi, TargetKind::Precision) => Box::new(UniformNoCiPrecision),
            (SelectorKind::Uniform, TargetKind::Recall) => Box::new(UniformRecall::new(cfg)),
            (SelectorKind::Uniform, TargetKind::Precision) => Box::new(UniformPrecision::new(cfg)),
            (SelectorKind::ImportanceSampling, TargetKind::Recall) => {
                Box::new(ImportanceRecall::new(cfg))
            }
            (SelectorKind::ImportanceSampling, TargetKind::Precision) => {
                Box::new(ImportancePrecision::new(cfg))
            }
            (SelectorKind::TwoStage, TargetKind::Precision) => {
                Box::new(TwoStagePrecision::new(cfg))
            }
            (SelectorKind::TwoStage, TargetKind::Recall) => {
                return Err(SupgError::UnsupportedSelector {
                    selector: "TwoStage",
                    target: TargetKind::Recall,
                })
            }
        })
    }
}

/// Oracles a session can drive. Beyond plain labeling, the JT pipeline
/// re-budgets the oracle between its stages (the stage budget for the RT
/// subroutine, unlimited for the exhaustive filter).
pub trait SessionOracle: Oracle {
    /// Replaces the oracle's *total* call budget (already-consumed calls
    /// keep counting against it). The JT pipeline therefore sets
    /// `calls_used() + stage_budget` to grant a stage exactly
    /// `stage_budget` fresh calls.
    fn set_budget(&mut self, budget: usize);
}

impl SessionOracle for CachedOracle {
    fn set_budget(&mut self, budget: usize) {
        CachedOracle::set_budget(self, budget)
    }
}

/// Forwarding impl mirroring the `&mut O` [`Oracle`] impl, so wrappers
/// (the [`crate::fault`] layer, the serving layer) can re-budget through a
/// mutable borrow of a caller's oracle.
impl<O: SessionOracle + ?Sized> SessionOracle for &mut O {
    fn set_budget(&mut self, budget: usize) {
        (**self).set_budget(budget);
    }
}

/// Everything one query execution produced — RT, PT and JT alike — for
/// auditing, evaluation and reporting.
///
/// Generic over the result representation: the default is the owned
/// [`SelectionResult`]; [`SupgSession::run_view`] returns the same
/// accounting around a borrowed, zero-copy [`ResultView`] (the
/// [`ViewOutcome`] alias), which
/// [`into_owned`](QueryOutcome::into_owned) materializes on demand.
#[derive(Debug, Clone)]
pub struct QueryOutcome<R = SelectionResult> {
    /// The returned record set `R = R1 ∪ R2` (oracle-verified positives
    /// only, for JT queries).
    pub result: R,
    /// The estimated proxy threshold (`∞` = labeled positives only).
    pub tau: f64,
    /// Paper identifier of the selector that estimated `τ`
    /// (`"U-CI-R"`, `"IS-CI-P"`, …).
    pub selector: &'static str,
    /// Total distinct oracle invocations: `stage_calls + filter_calls`.
    pub oracle_calls: usize,
    /// Oracle calls consumed estimating `τ` (the sampling stage).
    pub stage_calls: usize,
    /// Oracle calls consumed by the JT exhaustive filter (0 for RT/PT).
    pub filter_calls: usize,
    /// Total sample draws (with multiplicity; ≥ `stage_calls`).
    pub sample_draws: usize,
    /// Positive labels among the sampled records.
    pub sample_positives: usize,
    /// Size of the candidate set before JT filtering (equals
    /// `result.len()` for single-target queries).
    pub candidates: usize,
    /// Whether the JT pipeline ran.
    pub joint: bool,
    /// Wall-clock execution time (sampling + selection, excluding setup).
    pub elapsed: Duration,
    /// Sampling-artifact requests this query served from a prepared
    /// dataset's cache (0 for cold sessions — there is no cache to hit).
    pub cache_hits: u64,
    /// Sampling-artifact requests this query paid a fresh build for.
    pub cache_misses: u64,
    /// Wall-clock time of the sampling/estimation stage (for single-target
    /// queries this equals `elapsed`).
    pub stage_elapsed: Duration,
    /// Wall-clock time of the JT exhaustive filter (zero for RT/PT).
    pub filter_elapsed: Duration,
    /// Wall-clock time spent *inside oracle labeling* (every
    /// `label_batch` issued by the sampling stage and the JT filter).
    /// Unlike `elapsed` this excludes threshold sweeps, artifact builds
    /// and result materialization, which is why the adaptive planner's
    /// latency EWMA feeds on `oracle_elapsed / oracle_calls` — a fast
    /// oracle over a huge corpus must not look latency-bound just
    /// because the corpus-sized work around it was slow.
    pub oracle_elapsed: Duration,
    /// Transient oracle failures retried during this query (0 unless the
    /// oracle stack includes a retrying wrapper such as
    /// [`ResilientOracle`](crate::fault::ResilientOracle)).
    pub oracle_retries: u64,
    /// Records whose labeling failed permanently during this query, as
    /// counted by the oracle stack (a failure normally aborts the query,
    /// so successful outcomes report 0 unless a custom oracle absorbs
    /// failures internally).
    pub oracle_failures: u64,
    /// Retry backoff accrued during this query (virtual unless the retry
    /// policy really sleeps).
    pub retry_backoff: Duration,
    /// Records in the queried corpus — what the §6.5 cost model charges
    /// proxy inference for ([`cost`](QueryOutcome::cost)).
    pub n_records: usize,
    /// The resolved execution plan, when this query ran through the
    /// adaptive planner ([`SupgSession::planned`]) — a debug report of
    /// what was picked and which measured input drove each decision.
    /// `None` for hand-tuned queries; excluded from the bit-parity
    /// contract (two identical executions differ only in this report).
    pub plan: Option<Arc<Plan>>,
}

/// A [`QueryOutcome`] whose result is the borrowed, zero-copy
/// [`ResultView`] — what [`SupgSession::run_view`] returns.
pub type ViewOutcome<'a> = QueryOutcome<ResultView<'a>>;

impl ViewOutcome<'_> {
    /// Materializes the borrowed result into the owned form, paying the
    /// deferred O(k) copy — bit-identical to what
    /// [`SupgSession::run`] would have returned for the same query.
    pub fn into_owned(self) -> QueryOutcome {
        QueryOutcome {
            result: self.result.to_result(),
            tau: self.tau,
            selector: self.selector,
            oracle_calls: self.oracle_calls,
            stage_calls: self.stage_calls,
            filter_calls: self.filter_calls,
            sample_draws: self.sample_draws,
            sample_positives: self.sample_positives,
            candidates: self.candidates,
            joint: self.joint,
            elapsed: self.elapsed,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            stage_elapsed: self.stage_elapsed,
            filter_elapsed: self.filter_elapsed,
            oracle_elapsed: self.oracle_elapsed,
            oracle_retries: self.oracle_retries,
            oracle_failures: self.oracle_failures,
            retry_backoff: self.retry_backoff,
            n_records: self.n_records,
            plan: self.plan,
        }
    }
}

/// A fluent, validating builder that runs SUPG queries over one dataset.
///
/// See the [module docs](self) for RT and JT examples. Construction never
/// fails; every validation problem surfaces as a typed [`SupgError`] from
/// [`run`](SupgSession::run), so callers get one error path instead of
/// panics sprinkled across the pipeline.
#[derive(Debug, Clone)]
pub struct SupgSession<'a> {
    data: SessionData<'a>,
    recall: Option<f64>,
    precision: Option<f64>,
    delta: f64,
    budget: Option<usize>,
    joint: Option<usize>,
    selector: Option<SelectorKind>,
    config: SelectorConfig,
    seed: u64,
    runtime: Option<RuntimeConfig>,
    planner: Option<PlannerHandle<'a>>,
}

/// How a session holds its planner: borrowed for in-process callers,
/// shared (`Arc`) for `'static` serving sessions.
#[derive(Debug, Clone)]
enum PlannerHandle<'a> {
    Borrowed(&'a Planner),
    Shared(Arc<Planner>),
}

impl<'a> SupgSession<'a> {
    /// Starts a session over `data` with the paper defaults: `δ = 0.05`,
    /// the SUPG selector family (IS-CI-R for recall targets, the
    /// two-stage IS-CI-P for precision targets — see
    /// [`SelectorKind::paper_family_default`]), seed [`DEFAULT_SEED`],
    /// no targets yet.
    pub fn over(data: &'a ScoredDataset) -> Self {
        Self::with_data(SessionData::Cold(data))
    }

    /// Starts a session over a [`SegmentedDataset`]. Queries produce
    /// bit-identical [`QueryOutcome`]s to [`over`](SupgSession::over) on
    /// the concatenated scores with the same seed (under the default
    /// [`SamplerStrategy::Alias`](crate::prepared::SamplerStrategy) —
    /// pinned by `crates/core/tests/segmented_parity.rs`); only the
    /// artifact layout and build parallelism differ.
    pub fn over_segmented(data: &'a SegmentedDataset) -> Self {
        Self::with_data(SessionData::Segmented(data))
    }

    /// Starts a session over a [`PreparedDataset`], reusing its cached
    /// sampling artifacts instead of paying the O(n) weight/alias-table
    /// construction per query. Results are identical to
    /// [`over`](SupgSession::over) on the same data and seed; only the
    /// setup cost is amortized.
    pub fn over_prepared(prepared: &'a PreparedDataset) -> Self {
        Self::with_data(SessionData::Prepared(prepared))
    }

    /// Starts a session that *owns* a shared handle to a
    /// [`PreparedDataset`] — the form concurrent serving uses, where many
    /// sessions on many threads share one prepared corpus without a
    /// borrow tying them to its owner.
    pub fn over_shared(prepared: Arc<PreparedDataset>) -> Self {
        Self::with_data(SessionData::Shared(prepared))
    }

    fn with_data(data: SessionData<'a>) -> Self {
        Self {
            data,
            recall: None,
            precision: None,
            delta: 0.05,
            budget: None,
            joint: None,
            selector: None,
            config: SelectorConfig::default(),
            seed: DEFAULT_SEED,
            runtime: None,
            planner: None,
        }
    }

    /// The view selectors run against (dataset + optional artifact cache).
    fn view(&self) -> DataView<'_> {
        match &self.data {
            SessionData::Cold(data) => DataView::cold(data),
            SessionData::Segmented(seg) => DataView::cold_segmented(seg),
            SessionData::Prepared(prepared) => DataView::prepared(prepared),
            SessionData::Shared(prepared) => DataView::prepared(prepared),
        }
    }

    /// Sets a recall target `γ_r` (an RT query, or half of a JT query).
    pub fn recall(mut self, gamma: f64) -> Self {
        self.recall = Some(gamma);
        self
    }

    /// Sets a precision target `γ_p` (a PT query, or half of a JT query).
    pub fn precision(mut self, gamma: f64) -> Self {
        self.precision = Some(gamma);
        self
    }

    /// Sets the failure probability `δ` (default `0.05`).
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the oracle budget `s` of a single-target query.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Enables joint-target mode with the given recall-stage budget
    /// (JT queries are unbudgeted overall — appendix A).
    pub fn joint(mut self, stage_budget: usize) -> Self {
        self.joint = Some(stage_budget);
        self
    }

    /// Selects a specific algorithm family, honored verbatim — e.g.
    /// `ImportanceSampling` on a precision target runs the one-stage
    /// Figure-7 estimator. Without this call the session uses the
    /// paper's SUPG configuration for the target
    /// ([`SelectorKind::paper_family_default`] of `ImportanceSampling`).
    pub fn selector(mut self, kind: SelectorKind) -> Self {
        self.selector = Some(kind);
        self
    }

    /// Overrides the selector tuning knobs (CI method, weights, …).
    pub fn selector_config(mut self, config: SelectorConfig) -> Self {
        self.config = config;
        self
    }

    /// Picks the weighted-sampler backend the importance selectors draw
    /// through (default [`SamplerStrategy::Alias`]). `Cdf` skips the
    /// alias table's heavier O(n) construction — the right trade for a
    /// cold one-shot query — and `Auto` does that only while the recipe
    /// is cold, switching to the cached alias table once it recurs.
    /// Strategies consume the seeded RNG stream differently, so they are
    /// deterministic individually but not interchangeable bit-for-bit;
    /// see [`SamplerStrategy`].
    pub fn sampler_strategy(mut self, strategy: SamplerStrategy) -> Self {
        self.config.sampler = strategy;
        self
    }

    /// Fixes the session's RNG seed — determinism is configured once here
    /// instead of threading an RNG through every call (default
    /// [`DEFAULT_SEED`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the width of the worker pool used for batched oracle labeling
    /// (clamped to ≥ 1; default 1 = sequential). The setting is forwarded
    /// to the oracle via [`Oracle::configure_runtime`] when the query runs;
    /// it takes effect for oracles with a thread-safe source
    /// ([`CachedOracle::parallel`], [`CachedOracle::from_labels`]).
    ///
    /// A fixed seed yields an identical [`QueryOutcome`] at every
    /// parallelism level — see [`crate::runtime`] for the determinism
    /// contract.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        let runtime = self.runtime.get_or_insert_with(RuntimeConfig::default);
        runtime.parallelism = parallelism.max(1);
        self
    }

    /// Sets how many records one batched oracle request carries (clamped
    /// to ≥ 1; default [`crate::runtime::DEFAULT_BATCH_SIZE`]). Like
    /// [`parallelism`](SupgSession::parallelism), forwarded to the oracle
    /// at run time; never changes results, only how labeling work is
    /// chunked over the pool.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        let runtime = self.runtime.get_or_insert_with(RuntimeConfig::default);
        runtime.batch_size = batch_size.max(1);
        self
    }

    /// Sets the full execution runtime in one call (equivalent to
    /// `.parallelism(rt.parallelism).batch_size(rt.batch_size)`).
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Attaches the adaptive planner ([`crate::plan`]): before each run
    /// the session snapshots the measured signals ([`PlanSignals`]),
    /// resolves a [`Plan`], executes it, and attaches the plan to the
    /// [`QueryOutcome`] as a debug report. Explicit knobs stay pinned —
    /// a [`runtime`](SupgSession::runtime)/[`parallelism`](SupgSession::parallelism)
    /// setting is honored verbatim, and any sampler other than
    /// [`SamplerStrategy::Auto`] is treated as a caller pin — so full
    /// adaptivity means `.sampler_strategy(SamplerStrategy::Auto)
    /// .planned(&planner)` with no runtime call.
    ///
    /// Keep one `Planner` per oracle: it persists the oracle's per-call
    /// latency EWMA across queries, which is what the batching decisions
    /// feed on. A planned query's outcome is bit-identical to a
    /// hand-tuned query at the same resolved configuration (pinned by
    /// `crates/core/tests/planner_parity.rs`).
    pub fn planned(mut self, planner: &'a Planner) -> Self {
        self.planner = Some(PlannerHandle::Borrowed(planner));
        self
    }

    /// [`planned`](SupgSession::planned) with an owned shared handle —
    /// the form `'static` serving sessions use
    /// (cf. [`over_shared`](SupgSession::over_shared)).
    pub fn planned_shared(mut self, planner: Arc<Planner>) -> Self {
        self.planner = Some(PlannerHandle::Shared(planner));
        self
    }

    fn planner_ref(&self) -> Option<&Planner> {
        match &self.planner {
            None => None,
            Some(PlannerHandle::Borrowed(p)) => Some(p),
            Some(PlannerHandle::Shared(p)) => Some(p),
        }
    }

    /// Snapshots the measured planning signals for this session — the
    /// pure input [`Plan::resolve`] consumes.
    fn signals(&self, planner: &Planner) -> PlanSignals {
        let cal = CalibrationProfile::measured();
        let (prepared, recipe) = match &self.data {
            SessionData::Prepared(p) => (
                true,
                p.recipe_state(self.config.weight_exponent, self.config.uniform_mix),
            ),
            SessionData::Shared(p) => (
                true,
                p.recipe_state(self.config.weight_exponent, self.config.uniform_mix),
            ),
            SessionData::Cold(_) | SessionData::Segmented(_) => (false, RecipeState::Cold),
        };
        let (n, segments) = match &self.data {
            SessionData::Cold(d) => (d.len(), 0),
            SessionData::Segmented(s) => (s.len(), s.num_segments()),
            SessionData::Prepared(p) => (p.len(), corpus_segments(p.corpus())),
            SessionData::Shared(p) => (p.len(), corpus_segments(p.corpus())),
        };
        PlanSignals {
            n,
            segments,
            prepared,
            recipe,
            requested_sampler: self.config.sampler,
            pinned_runtime: self.runtime,
            oracle_ns_per_call: planner.oracle_ns_per_call(),
            effective_cores: cal.effective_cores,
            chunked_sort_speedup: cal.chunked_sort_speedup(),
            policy: planner.policy(),
        }
    }

    /// The effective per-run configuration: without a planner, the
    /// session's own knobs verbatim; with one, the resolved [`Plan`]
    /// applied on top of them (pins honored inside resolution).
    fn resolve_plan(&self) -> (SelectorConfig, Option<RuntimeConfig>, Option<Arc<Plan>>) {
        let Some(planner) = self.planner_ref() else {
            return (self.config, self.runtime, None);
        };
        let signals = self.signals(planner);
        let plan = Plan::resolve(&signals);
        planner.note(&signals, &plan);
        let mut config = self.config;
        config.sampler = plan.sampler;
        let runtime = Some(plan.runtime());
        (config, runtime, Some(Arc::new(plan)))
    }

    /// Configures the session from a validated single-target query
    /// specification: sets its target, `γ`, `δ` and budget, and clears
    /// any previously set opposite target or joint mode — the session
    /// afterwards plans exactly the given query.
    pub fn query(mut self, query: &ApproxQuery) -> Self {
        match query.target() {
            TargetKind::Recall => {
                self.recall = Some(query.gamma());
                self.precision = None;
            }
            TargetKind::Precision => {
                self.precision = Some(query.gamma());
                self.recall = None;
            }
        }
        self.delta = query.delta();
        self.budget = Some(query.budget());
        self.joint = None;
        self
    }

    /// Runs the query with the session's own seeded RNG.
    ///
    /// # Errors
    /// Typed [`SupgError`]s for builder validation problems (missing
    /// target/budget, conflicting targets, out-of-range `γ`/`δ`,
    /// unsupported selector/target combinations) and for oracle failures
    /// during execution.
    pub fn run(&self, oracle: &mut dyn SessionOracle) -> Result<QueryOutcome, SupgError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.run_with_rng(oracle, &mut rng)
    }

    /// Runs a single-target (RT/PT) query against any plain [`Oracle`]
    /// implementation. Custom oracles only need [`SessionOracle`] (and
    /// [`run`](SupgSession::run)) for JT queries, whose pipeline
    /// re-budgets the oracle between stages.
    ///
    /// # Errors
    /// As [`run`](SupgSession::run); additionally a typed
    /// [`SupgError::InvalidQuery`] when the session is in joint mode.
    pub fn run_single_target(&self, oracle: &mut dyn Oracle) -> Result<QueryOutcome, SupgError> {
        match self.mode()? {
            Mode::Single(query) => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                self.exec_planned_single(&query, oracle, &mut rng)
            }
            Mode::Joint { .. } => Err(SupgError::InvalidQuery(
                "JT sessions re-budget the oracle between stages; use run(..) with a \
                 SessionOracle (e.g. CachedOracle)"
                    .to_owned(),
            )),
        }
    }

    /// Runs the query with a caller-supplied RNG (for engines that manage
    /// one RNG across many statements).
    ///
    /// # Errors
    /// As [`run`](SupgSession::run).
    pub fn run_with_rng(
        &self,
        oracle: &mut dyn SessionOracle,
        rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, SupgError> {
        match self.mode()? {
            Mode::Single(query) => self.exec_planned_single(&query, oracle, rng),
            Mode::Joint {
                query,
                stage_budget,
            } => self
                .exec_joint_view(&query, stage_budget, oracle, rng)
                .map(ViewOutcome::into_owned),
        }
    }

    /// Runs the query — RT, PT or JT — and returns the zero-copy
    /// [`ViewOutcome`]: the threshold set stays a borrowed rank-prefix
    /// slice over the session's dataset instead of an owned `Vec` — for a
    /// huge `τ`-set this skips the entire O(k) materialization until (and
    /// unless) the caller asks for it via
    /// [`ViewOutcome::into_owned`]. JT results come back as a *filtered*
    /// view ([`ResultView::retain`]): the oracle-approved prefix members
    /// are rank positions over the borrowed index, never an owned copy of
    /// the record set. Identical draws, `τ` and accounting to
    /// [`run`](SupgSession::run) on the same seed.
    ///
    /// Takes a [`SessionOracle`] (like [`run`](SupgSession::run)) because
    /// the JT pipeline re-budgets the oracle between stages; single-target
    /// streaming over a plain [`Oracle`] is available via
    /// [`run_view_single_target`](SupgSession::run_view_single_target).
    ///
    /// # Errors
    /// As [`run`](SupgSession::run).
    pub fn run_view(&self, oracle: &mut dyn SessionOracle) -> Result<ViewOutcome<'_>, SupgError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.mode()? {
            Mode::Single(query) => self.exec_planned_view(&query, oracle, &mut rng),
            Mode::Joint {
                query,
                stage_budget,
            } => self.exec_joint_view(&query, stage_budget, oracle, &mut rng),
        }
    }

    /// [`run_view`](SupgSession::run_view) for single-target (RT/PT)
    /// queries against any plain [`Oracle`] implementation — the streaming
    /// counterpart of [`run_single_target`](SupgSession::run_single_target).
    ///
    /// # Errors
    /// As [`run`](SupgSession::run); additionally a typed
    /// [`SupgError::InvalidQuery`] when the session is in joint mode (JT
    /// re-budgets the oracle between stages, which needs a
    /// [`SessionOracle`] — use [`run_view`](SupgSession::run_view)).
    pub fn run_view_single_target(
        &self,
        oracle: &mut dyn Oracle,
    ) -> Result<ViewOutcome<'_>, SupgError> {
        match self.mode()? {
            Mode::Single(query) => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                self.exec_planned_view(&query, oracle, &mut rng)
            }
            Mode::Joint { .. } => Err(SupgError::InvalidQuery(
                "JT sessions re-budget the oracle between stages; use run_view(..) with a \
                 SessionOracle (e.g. CachedOracle)"
                    .to_owned(),
            )),
        }
    }

    /// Shared single-target execution behind
    /// [`run_with_rng`](SupgSession::run_with_rng),
    /// [`run_single_target`](SupgSession::run_single_target) and
    /// [`run_view`](SupgSession::run_view): resolve and build the
    /// selector, forward the session's runtime config to the oracle, run
    /// Algorithm 1 and return the borrowed result view.
    fn exec_planned_view(
        &self,
        query: &ApproxQuery,
        oracle: &mut dyn Oracle,
        rng: &mut dyn RngCore,
    ) -> Result<ViewOutcome<'_>, SupgError> {
        let (config, runtime, plan) = self.resolve_plan();
        let kind = self.resolved_selector(query.target());
        let selector = kind.build(query.target(), config)?;
        if let Some(runtime) = runtime {
            oracle.configure_runtime(runtime);
        }
        let mut outcome = exec_single_view(self.view(), query, selector.as_ref(), oracle, rng)?;
        outcome.plan = plan;
        if let Some(planner) = self.planner_ref() {
            planner.observe(&outcome);
        }
        Ok(outcome)
    }

    /// The JT counterpart of [`exec_planned_view`](Self::exec_planned_view):
    /// resolve the (possibly planned) configuration once for the whole
    /// pipeline, run both stages, attach the plan report.
    fn exec_joint_view(
        &self,
        query: &JointQuery,
        stage_budget: usize,
        oracle: &mut dyn SessionOracle,
        rng: &mut dyn RngCore,
    ) -> Result<ViewOutcome<'_>, SupgError> {
        let (config, runtime, plan) = self.resolve_plan();
        let kind = self.resolved_selector(TargetKind::Recall);
        let selector = kind.build(TargetKind::Recall, config)?;
        if let Some(runtime) = runtime {
            oracle.configure_runtime(runtime);
        }
        let mut outcome = exec_joint(
            self.view(),
            query,
            stage_budget,
            selector.as_ref(),
            oracle,
            rng,
        )?;
        outcome.plan = plan;
        if let Some(planner) = self.planner_ref() {
            planner.observe(&outcome);
        }
        Ok(outcome)
    }

    /// [`exec_planned_view`](Self::exec_planned_view) materialized into
    /// the owned [`QueryOutcome`].
    fn exec_planned_single(
        &self,
        query: &ApproxQuery,
        oracle: &mut dyn Oracle,
        rng: &mut dyn RngCore,
    ) -> Result<QueryOutcome, SupgError> {
        self.exec_planned_view(query, oracle, rng)
            .map(ViewOutcome::into_owned)
    }

    /// The selector kind this session will actually run for `target`: the
    /// explicit choice if [`selector`](SupgSession::selector) was called,
    /// otherwise the SUPG family default for the target.
    fn resolved_selector(&self, target: TargetKind) -> SelectorKind {
        self.selector
            .unwrap_or_else(|| SelectorKind::ImportanceSampling.paper_family_default(target))
    }

    /// Validates the builder state without executing anything.
    ///
    /// # Errors
    /// The same typed validation errors as [`run`](SupgSession::run).
    pub fn validate(&self) -> Result<(), SupgError> {
        self.mode().map(|_| ())
    }

    fn mode(&self) -> Result<Mode, SupgError> {
        match (self.recall, self.precision, self.joint) {
            (None, None, _) => Err(SupgError::MissingTarget),
            (Some(_), Some(_), None) => Err(SupgError::ConflictingTargets),
            (Some(gamma_r), Some(gamma_p), Some(stage_budget)) => {
                if self.budget.is_some() {
                    return Err(SupgError::InvalidQuery(
                        "JT queries are unbudgeted; the stage budget is set via joint(..)"
                            .to_owned(),
                    ));
                }
                // Validates both γs and δ.
                let query = JointQuery::new(gamma_r, gamma_p, self.delta)?;
                if stage_budget < 2 {
                    return Err(SupgError::InvalidQuery(format!(
                        "JT stage budget {stage_budget} must be at least 2"
                    )));
                }
                // The JT pipeline's sampling stage is a recall stage.
                self.resolved_selector(TargetKind::Recall)
                    .paper_name(TargetKind::Recall)?;
                Ok(Mode::Joint {
                    query,
                    stage_budget,
                })
            }
            (recall, precision, joint) => {
                if joint.is_some() {
                    return Err(SupgError::MissingTarget);
                }
                let (target, gamma) = match (recall, precision) {
                    (Some(g), None) => (TargetKind::Recall, g),
                    (None, Some(g)) => (TargetKind::Precision, g),
                    _ => unreachable!("two-target cases handled above"),
                };
                let budget = self.budget.ok_or(SupgError::MissingBudget)?;
                self.resolved_selector(target).paper_name(target)?;
                Ok(Mode::Single(ApproxQuery::new(
                    target, gamma, self.delta, budget,
                )?))
            }
        }
    }
}

/// The dataset a session runs over: a plain borrow (cold, per-query
/// artifact construction) — flat or segmented — a borrowed prepared
/// dataset, or an owned shared handle to one (concurrent serving).
#[derive(Debug, Clone)]
enum SessionData<'a> {
    Cold(&'a ScoredDataset),
    Segmented(&'a SegmentedDataset),
    Prepared(&'a PreparedDataset),
    Shared(Arc<PreparedDataset>),
}

/// Segment count of a corpus (0 = flat) — a planner signal.
fn corpus_segments(corpus: Corpus<'_>) -> usize {
    match corpus {
        Corpus::Flat(_) => 0,
        Corpus::Segmented(s) => s.num_segments(),
    }
}

enum Mode {
    Single(ApproxQuery),
    Joint {
        query: JointQuery,
        stage_budget: usize,
    },
}

/// Algorithm 1 with an explicit selector: estimate `τ`, return labeled
/// positives ∪ threshold set — as a borrowed [`ResultView`]. The
/// threshold set `R2 = D(τ)` is a binary search for the cut plus a
/// zero-copy rank-prefix slice; only the (small) below-cut labeled
/// positives are owned. Materializing the owned [`SelectionResult`]
/// (`ViewOutcome::into_owned`) performs exactly the
/// [`RankIndex::materialize_union`](crate::rank::RankIndex::materialize_union)
/// copy the non-streaming pipeline always did.
fn exec_single_view<'v>(
    view: DataView<'v>,
    query: &ApproxQuery,
    selector: &dyn ThresholdSelector,
    oracle: &mut dyn Oracle,
    rng: &mut dyn RngCore,
) -> Result<ViewOutcome<'v>, SupgError> {
    let start = Instant::now();
    let calls_before = oracle.calls_used();
    let retry_before = oracle.retry_stats();
    let labeling_before = labeling_clock::total();
    let n_records = view.data().len();
    // The rank source is borrowed *before* the probe shortens the view's
    // lifetime — the returned result view must outlive the local probe.
    let ranks = view.rank_source();
    let probe = QueryProbe::new();
    let estimate = selector.estimate(view.with_probe(&probe), query, oracle, rng)?;

    // R = R2 ∪ R1 off the rank structure: flat corpora borrow the prefix
    // from the global index with no copy; segmented corpora stitch it
    // once from the per-segment indexes.
    let result = ResultView::over(ranks, estimate.tau, estimate.sample.positive_indices());

    let stage_calls = oracle.calls_used() - calls_before;
    let retry = oracle.retry_stats().since(retry_before);
    let oracle_elapsed = labeling_clock::total() - labeling_before;
    let elapsed = start.elapsed();
    Ok(QueryOutcome {
        candidates: result.len(),
        result,
        tau: estimate.tau,
        selector: selector.name(),
        oracle_calls: stage_calls,
        stage_calls,
        filter_calls: 0,
        sample_draws: estimate.sample.len(),
        sample_positives: estimate.sample.positive_count(),
        joint: false,
        elapsed,
        cache_hits: probe.cache_hits(),
        cache_misses: probe.cache_misses(),
        stage_elapsed: elapsed,
        filter_elapsed: Duration::ZERO,
        oracle_elapsed,
        oracle_retries: retry.retries,
        oracle_failures: retry.failures,
        retry_backoff: retry.backoff,
        n_records,
        plan: None,
    })
}

/// Appendix A with an explicit RT selector: recall stage under the stage
/// budget, then exhaustive oracle filtering of the candidates (precision
/// becomes 1 ≥ γ_p while recall is untouched — only negatives are
/// removed).
fn exec_joint<'v>(
    view: DataView<'v>,
    query: &JointQuery,
    stage_budget: usize,
    rt_selector: &dyn ThresholdSelector,
    oracle: &mut dyn SessionOracle,
    rng: &mut dyn RngCore,
) -> Result<ViewOutcome<'v>, SupgError> {
    let rt_query = ApproxQuery::new(
        TargetKind::Recall,
        query.recall_gamma(),
        query.delta(),
        stage_budget,
    )?;
    // The pipeline re-budgets the oracle stage by stage; put the caller's
    // own budget back afterwards (success or error) so a reused oracle
    // keeps enforcing it.
    let saved_budget = oracle.budget();
    let result = exec_joint_stages(view, &rt_query, rt_selector, oracle, rng);
    oracle.set_budget(saved_budget);
    result
}

fn exec_joint_stages<'v>(
    view: DataView<'v>,
    rt_query: &ApproxQuery,
    rt_selector: &dyn ThresholdSelector,
    oracle: &mut dyn SessionOracle,
    rng: &mut dyn RngCore,
) -> Result<ViewOutcome<'v>, SupgError> {
    let start = Instant::now();
    let calls_before = oracle.calls_used();
    let retry_before = oracle.retry_stats();
    let labeling_before = labeling_clock::total();
    // Grant the RT stage exactly its stage budget in fresh calls even when
    // the oracle was used before (set_budget replaces the *total* budget).
    oracle.set_budget(calls_before.saturating_add(rt_query.budget()));
    let stage = exec_single_view(view, rt_query, rt_selector, oracle, rng)?;
    let stage_calls = oracle.calls_used() - calls_before;
    let stage_elapsed = stage.elapsed;

    // The candidate set is already a rank-range (the stage result is the
    // τ rank-prefix plus its labeled positives), and the stage returned a
    // borrowed view over it, so enumeration for the label batch is the
    // *only* copy — and it is dropped again right here; the surviving
    // record set is never materialized at all
    // ([`ResultView::retain`] keeps rank positions over the borrowed
    // index). Already-labeled records are cache hits and cost nothing
    // extra; the filter is one batched request, so a parallel oracle
    // labels the candidate set on its worker pool.
    let filter_start = Instant::now();
    oracle.set_budget(usize::MAX);
    let candidates: Vec<usize> = stage.result.iter().collect();
    let labels = oracle.label_batch(&candidates)?;
    drop(candidates);
    // Keeping a subsequence of the duplicate-free ranked candidates
    // preserves both properties — no sort/dedup pass here either.
    let result = stage.result.retain(&labels);
    let filter_calls = oracle.calls_used() - calls_before - stage_calls;
    let filter_elapsed = filter_start.elapsed();
    // One diff over both stages: the stage outcome's own retry fields are
    // subsumed by this query-wide accounting.
    let retry = oracle.retry_stats().since(retry_before);
    let oracle_elapsed = labeling_clock::total() - labeling_before;

    Ok(QueryOutcome {
        result,
        tau: stage.tau,
        selector: stage.selector,
        oracle_calls: stage_calls + filter_calls,
        stage_calls,
        filter_calls,
        sample_draws: stage.sample_draws,
        sample_positives: stage.sample_positives,
        candidates: stage.candidates,
        joint: true,
        elapsed: start.elapsed(),
        cache_hits: stage.cache_hits,
        cache_misses: stage.cache_misses,
        stage_elapsed,
        filter_elapsed,
        oracle_elapsed,
        oracle_retries: retry.retries,
        oracle_failures: retry.failures,
        retry_backoff: retry.backoff,
        n_records: stage.n_records,
        plan: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn separable(n: usize) -> (ScoredDataset, Vec<bool>) {
        let scores: Vec<f64> = (0..n).map(|i| (i % 1000) as f64 / 1000.0).collect();
        let labels: Vec<bool> = scores.iter().map(|&s| s > 0.8).collect();
        (ScoredDataset::new(scores).unwrap(), labels)
    }

    #[test]
    fn rt_pt_and_jt_run_through_one_entry_point() {
        let (data, labels) = separable(20_000);

        let mut oracle = CachedOracle::from_labels(labels.clone(), 1_000);
        let rt = SupgSession::over(&data)
            .recall(0.9)
            .budget(1_000)
            .run(&mut oracle)
            .unwrap();
        assert_eq!(rt.selector, "IS-CI-R");
        assert!(!rt.joint);
        assert_eq!(rt.filter_calls, 0);
        assert!(rt.oracle_calls <= 1_000);

        let mut oracle = CachedOracle::from_labels(labels.clone(), 1_000);
        let pt = SupgSession::over(&data)
            .precision(0.9)
            .budget(1_000)
            .selector(SelectorKind::TwoStage)
            .run(&mut oracle)
            .unwrap();
        assert_eq!(pt.selector, "IS-CI-P");

        let mut oracle = CachedOracle::from_labels(labels, 0);
        let jt = SupgSession::over(&data)
            .recall(0.8)
            .precision(0.9)
            .joint(800)
            .run(&mut oracle)
            .unwrap();
        assert!(jt.joint);
        assert_eq!(jt.selector, "IS-CI-R");
        assert!(jt.stage_calls <= 800);
        assert!(jt.filter_calls <= jt.candidates);
        assert_eq!(jt.oracle_calls, jt.stage_calls + jt.filter_calls);
        // The exhaustive filter keeps only true positives.
        for idx in jt.result.iter() {
            assert!(idx > 16_000 || idx % 1000 > 800);
        }
    }

    #[test]
    fn oracle_elapsed_measures_labeling_time_only() {
        let (data, labels) = separable(20_000);
        let mut oracle = CachedOracle::from_labels(labels.clone(), 1_000);
        let rt = SupgSession::over(&data)
            .recall(0.9)
            .budget(1_000)
            .run(&mut oracle)
            .unwrap();
        assert!(rt.oracle_calls > 0);
        assert!(
            rt.oracle_elapsed > Duration::ZERO,
            "labeling time must be accounted"
        );
        assert!(
            rt.oracle_elapsed <= rt.elapsed,
            "oracle time {:?} cannot exceed whole-query time {:?}",
            rt.oracle_elapsed,
            rt.elapsed
        );

        // JT: the diff spans both the sampling stage and the filter.
        let mut oracle = CachedOracle::from_labels(labels, 0);
        let jt = SupgSession::over(&data)
            .recall(0.8)
            .precision(0.9)
            .joint(800)
            .run(&mut oracle)
            .unwrap();
        assert!(jt.oracle_elapsed > Duration::ZERO);
        assert!(jt.oracle_elapsed <= jt.elapsed);
    }

    #[test]
    fn same_seed_same_outcome_different_seed_differs() {
        let (data, labels) = separable(10_000);
        let run = |seed: u64| {
            let mut oracle = CachedOracle::from_labels(labels.clone(), 500);
            SupgSession::over(&data)
                .recall(0.9)
                .budget(500)
                .seed(seed)
                .run(&mut oracle)
                .unwrap()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a.tau, b.tau);
        assert_eq!(a.result.indices(), b.result.indices());
        assert!(a.tau != c.tau || a.result.indices() != c.result.indices());
    }

    #[test]
    fn joint_stage_gets_its_full_budget_on_a_reused_oracle() {
        // A JT query on an oracle that already consumed calls (e.g. to
        // reuse its label cache) must still grant the RT stage
        // `stage_budget` *fresh* calls, not fail against the old total.
        let (data, labels) = separable(10_000);
        let mut oracle = CachedOracle::from_labels(labels, 400);
        let warmup = SupgSession::over(&data)
            .recall(0.9)
            .budget(400)
            .run(&mut oracle)
            .unwrap();
        assert!(warmup.oracle_calls > 0);
        let used_before = warmup.oracle_calls;
        let jt = SupgSession::over(&data)
            .recall(0.8)
            .precision(0.9)
            .joint(400)
            .run(&mut oracle)
            .unwrap();
        assert!(jt.joint);
        assert!(
            jt.stage_calls <= 400,
            "stage consumed {} > stage budget",
            jt.stage_calls
        );
        // The stage was not silently starved by the warm-up's usage.
        assert!(oracle.calls_used() >= used_before);
    }

    #[test]
    fn query_resets_opposite_target_and_joint_mode() {
        let (data, labels) = separable(5_000);
        let pt = ApproxQuery::precision_target(0.9, 0.05, 300);
        // A builder that was configured for a JT query re-plans cleanly
        // when handed a single-target specification.
        let session = SupgSession::over(&data)
            .recall(0.8)
            .precision(0.85)
            .joint(200)
            .query(&pt);
        session.validate().unwrap();
        let mut oracle = CachedOracle::from_labels(labels, 300);
        let outcome = session
            .selector(SelectorKind::Uniform)
            .run(&mut oracle)
            .unwrap();
        assert_eq!(outcome.selector, "U-CI-P");
        assert!(!outcome.joint);
    }

    #[test]
    fn registry_iterates_exactly_the_supported_pairs() {
        let pairs: Vec<_> = SelectorKind::registry().collect();
        assert_eq!(pairs.len(), 7, "4 kinds x 2 targets minus TwoStage x RT");
        for (kind, target) in pairs {
            assert!(kind.supports(target));
            assert!(kind.paper_name(target).is_ok());
        }
    }

    #[test]
    fn registry_names_round_trip() {
        for kind in SelectorKind::ALL {
            for target in [TargetKind::Recall, TargetKind::Precision] {
                match kind.paper_name(target) {
                    Ok(name) => {
                        assert_eq!(SelectorKind::from_paper_name(name), Some((kind, target)));
                        let selector = kind.build(target, SelectorConfig::default()).unwrap();
                        assert_eq!(selector.name(), name);
                    }
                    Err(e) => {
                        assert!(matches!(e, SupgError::UnsupportedSelector { .. }));
                        assert!(kind.build(target, SelectorConfig::default()).is_err());
                        assert!(!kind.supports(target));
                    }
                }
            }
        }
        assert_eq!(SelectorKind::from_paper_name("nope"), None);
    }

    #[test]
    fn query_copies_an_approx_query() {
        let (data, labels) = separable(5_000);
        let q = ApproxQuery::precision_target(0.85, 0.1, 400);
        let mut oracle = CachedOracle::from_labels(labels, 400);
        let outcome = SupgSession::over(&data)
            .query(&q)
            .selector(SelectorKind::Uniform)
            .run(&mut oracle)
            .unwrap();
        assert_eq!(outcome.selector, "U-CI-P");
        assert!(outcome.oracle_calls <= 400);
    }

    // --- Migrated from the removed `joint::execute_joint` shim's suite ---

    fn rare(n: usize, seed: u64) -> (ScoredDataset, Vec<bool>) {
        use supg_stats::dist::{Bernoulli, Beta};
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Beta::new(0.05, 2.0);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = dist.sample(&mut rng);
            scores.push(a);
            labels.push(Bernoulli::new(a).sample(&mut rng));
        }
        (ScoredDataset::new(scores).unwrap(), labels)
    }

    #[test]
    fn joint_query_achieves_both_targets() {
        let (data, labels) = rare(30_000, 61);
        let mut failures = 0;
        for t in 0..10 {
            let mut oracle = CachedOracle::from_labels(labels.clone(), 0);
            let out = SupgSession::over(&data)
                .recall(0.9)
                .precision(0.9)
                .joint(1_000)
                .seed(6100 + t)
                .run(&mut oracle)
                .unwrap();
            let pr = crate::metrics::evaluate(out.result.indices(), &labels);
            // Precision is exactly 1 after exhaustive filtering.
            assert_eq!(pr.precision, 1.0);
            if pr.recall < 0.9 {
                failures += 1;
            }
        }
        assert!(failures <= 1, "{failures}/10 recall failures");
    }

    #[test]
    fn joint_filter_only_pays_for_unlabeled_candidates() {
        let (data, labels) = rare(10_000, 62);
        let mut oracle = CachedOracle::from_labels(labels, 0);
        let out = SupgSession::over(&data)
            .recall(0.8)
            .precision(0.9)
            .joint(500)
            .seed(63)
            .run(&mut oracle)
            .unwrap();
        assert!(out.stage_calls <= 500);
        assert!(out.filter_calls <= out.candidates);
        assert_eq!(out.oracle_calls, out.stage_calls + out.filter_calls);
    }

    #[test]
    fn joint_importance_uses_fewer_total_calls_than_uniform() {
        // SUPG's advantage in Figure 15: the IS recall stage returns a
        // smaller candidate set, so the exhaustive filter is cheaper.
        let (data, labels) = rare(30_000, 64);
        let mut is_total = 0usize;
        let mut u_total = 0usize;
        for t in 0..5 {
            let run = |kind: SelectorKind, labels: &[bool]| {
                let mut oracle = CachedOracle::from_labels(labels.to_vec(), 0);
                SupgSession::over(&data)
                    .recall(0.75)
                    .precision(0.9)
                    .joint(1_000)
                    .selector(kind)
                    .seed(6400 + t)
                    .run(&mut oracle)
                    .unwrap()
                    .oracle_calls
            };
            is_total += run(SelectorKind::ImportanceSampling, &labels);
            u_total += run(SelectorKind::Uniform, &labels);
        }
        assert!(
            is_total < u_total,
            "importance total {is_total} vs uniform {u_total}"
        );
    }

    #[test]
    fn engine_style_external_rng_advances() {
        let (data, labels) = separable(5_000);
        let session = SupgSession::over(&data).recall(0.9).budget(300);
        let mut rng = StdRng::seed_from_u64(9);
        let mut o1 = CachedOracle::from_labels(labels.clone(), 300);
        let a = session.run_with_rng(&mut o1, &mut rng).unwrap();
        let mut o2 = CachedOracle::from_labels(labels, 300);
        let b = session.run_with_rng(&mut o2, &mut rng).unwrap();
        // The shared RNG advanced between statements.
        assert!(a.tau != b.tau || rng.gen::<u64>() != 0);
    }
}
