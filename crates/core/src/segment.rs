//! Segmented datasets: fixed-size segments, each owning its rank index,
//! answering global queries over the union with **no merged global
//! structure**.
//!
//! A 10⁸–10⁹-record corpus cannot keep one contiguous score array, one
//! contiguous permutation, and one contiguous sampler — and even where it
//! could, the chunk-parallel builds of the flat path spend their
//! multicore win re-merging sorted runs into a single allocation.
//! [`SegmentedDataset`] splits the corpus into fixed-size segments (the
//! layout BlazeIt's partitioned scans and Willump's staged cascades use
//! for the same reason): each segment is an ordinary [`ScoredDataset`]
//! whose [`RankIndex`](crate::rank::RankIndex) is built **fully in parallel with the others and
//! never merged**. Global queries are answered over the union:
//!
//! * `|D(τ)|` ([`count_at_least`](SegmentedDataset::count_at_least)) —
//!   one binary search per segment, summed.
//! * Threshold-set materialization
//!   ([`materialize`](SegmentedDataset::materialize),
//!   [`materialize_union`](SegmentedDataset::materialize_union)) — a
//!   k-way merge over the segment rank heads: each segment contributes
//!   its `D(τ)` rank *prefix*, and a binary heap stitches the prefixes in
//!   canonical order by the same packed `(score desc, index asc)` keys
//!   the flat sort uses.
//! * Global ranks ([`rank_of`](SegmentedDataset::rank_of)) — per-segment
//!   counting against the record's key, summed.
//! * Order statistics ([`kth_highest_score`](SegmentedDataset::kth_highest_score),
//!   [`top_k`](SegmentedDataset::top_k)) — a binary search over the f64
//!   bit space driven by the exact integer `count_at_least`.
//!
//! Because canonical rank order is a **strict total order** (descending
//! score, ties by ascending global index — and a segment's local order is
//! its global order restricted to the segment, offsets preserving the
//! tie-break), every one of these answers is *bit-identical* to the flat
//! [`RankIndex`](crate::rank::RankIndex) over the concatenated scores, at every segment size and
//! every parallelism setting (pinned by `tests/segmented_parity.rs`).
//!
//! [`Corpus`] is the borrowed either-flat-or-segmented view the selector
//! and sampling layers work against, so one code path serves both
//! layouts.

use std::sync::Arc;

use crate::data::ScoredDataset;
use crate::error::SupgError;
use crate::rank;

use crate::runtime::{cpu_workers, parallel_map, RuntimeConfig};

/// A proxy-scored corpus stored as fixed-size segments, each owning its
/// own lazily built [`RankIndex`](crate::rank::RankIndex). See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SegmentedDataset {
    segments: Vec<Arc<ScoredDataset>>,
    /// The fixed segment size (every segment but the last has exactly
    /// this many records).
    segment_size: usize,
    /// Global offset of each segment's first record.
    offsets: Vec<usize>,
    len: usize,
}

impl SegmentedDataset {
    /// Splits `scores` into fixed-size segments and validates each (same
    /// score contract as [`ScoredDataset::new`]). Rank indexes are built
    /// lazily per segment — serially on first use, or eagerly in parallel
    /// via [`prepare`](Self::prepare).
    ///
    /// # Errors
    /// [`SupgError::EmptyDataset`] for zero records;
    /// [`SupgError::InvalidScore`] (with the **global** record index) if
    /// any score is non-finite or outside `[0, 1]`;
    /// [`SupgError::InvalidQuery`] for `segment_size == 0` or more than
    /// `u32::MAX` records.
    pub fn new(scores: Vec<f64>, segment_size: usize) -> Result<Self, SupgError> {
        if segment_size == 0 {
            return Err(SupgError::InvalidQuery(
                "segment_size must be positive".to_owned(),
            ));
        }
        if scores.is_empty() {
            return Err(SupgError::EmptyDataset);
        }
        let mut chunks = Vec::with_capacity(scores.len().div_ceil(segment_size));
        let mut rest = scores;
        while rest.len() > segment_size {
            let tail = rest.split_off(segment_size);
            chunks.push(rest);
            rest = tail;
        }
        chunks.push(rest);
        Self::from_chunks(chunks)
    }

    /// Assembles a segmented dataset from pre-split score chunks — the
    /// segment-aligned loading path (`supg-datasets`' CSV reader emits
    /// chunks in this shape). Every chunk but the last must have the same
    /// length (the fixed segment size).
    ///
    /// # Errors
    /// As [`new`](Self::new), plus [`SupgError::InvalidQuery`] when the
    /// chunks are not segment-aligned (unequal non-final chunk, empty
    /// chunk).
    pub fn from_chunks(chunks: Vec<Vec<f64>>) -> Result<Self, SupgError> {
        if chunks.is_empty() {
            return Err(SupgError::EmptyDataset);
        }
        let segment_size = chunks[0].len();
        let mut offsets = Vec::with_capacity(chunks.len());
        let mut segments = Vec::with_capacity(chunks.len());
        let mut base = 0usize;
        let last = chunks.len() - 1;
        for (c, chunk) in chunks.into_iter().enumerate() {
            if chunk.is_empty() {
                return Err(SupgError::InvalidQuery(format!(
                    "segment {c} is empty; segments must be non-empty"
                )));
            }
            if chunk.len() != segment_size && c != last || chunk.len() > segment_size {
                return Err(SupgError::InvalidQuery(format!(
                    "segment {c} has {} records; expected the fixed segment size {segment_size} \
                     (only the final segment may be shorter)",
                    chunk.len()
                )));
            }
            let seg = ScoredDataset::new(chunk).map_err(|e| match e {
                // Re-anchor the per-segment index to the global record.
                SupgError::InvalidScore { index, value } => SupgError::InvalidScore {
                    index: base + index,
                    value,
                },
                other => other,
            })?;
            offsets.push(base);
            base += seg.len();
            segments.push(Arc::new(seg));
        }
        if base > u32::MAX as usize {
            return Err(SupgError::InvalidQuery(
                "datasets above u32::MAX records are unsupported".to_owned(),
            ));
        }
        Ok(Self {
            segments,
            segment_size,
            offsets,
            len: base,
        })
    }

    /// Total records across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the corpus has no records (construction forbids this, so
    /// this is always false; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The fixed segment size (the last segment may be shorter).
    pub fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// The segments, in global order.
    pub fn segments(&self) -> &[Arc<ScoredDataset>] {
        &self.segments
    }

    /// Segment `c`.
    pub fn segment(&self, c: usize) -> &ScoredDataset {
        &self.segments[c]
    }

    /// Global offset of segment `c`'s first record.
    pub fn offset(&self, c: usize) -> usize {
        self.offsets[c]
    }

    /// Maps a global record index to `(segment, local index)`.
    pub fn locate(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.len, "record {i} out of range {}", self.len);
        let c = self.offsets.partition_point(|&o| o <= i) - 1;
        (c, i - self.offsets[c])
    }

    /// Proxy score of global record `i`.
    pub fn score(&self, i: usize) -> f64 {
        let (c, local) = self.locate(i);
        self.segments[c].score(local)
    }

    /// Builds every segment's rank index **in parallel** on the worker
    /// pool — one segment per worker, each built independently, merged
    /// never. A no-op for segments already built; results are identical
    /// to the lazy serial builds (the per-segment sort is deterministic).
    pub fn prepare(&self, rt: &RuntimeConfig) -> &Self {
        let pool = RuntimeConfig::default()
            .with_parallelism(cpu_workers(rt.parallelism))
            .with_batch_size(1);
        parallel_map(&pool, &self.segments, |seg| {
            seg.rank_index();
        });
        self
    }

    /// [`prepare`](Self::prepare) at the worker count a resolved
    /// [`Plan`](crate::plan::Plan) chose (`plan.chunks`): per-segment
    /// index builds are chunk-parallel CPU work, so the planner's
    /// measured chunk count — never more than the effective cores, and
    /// serial wherever chunking measured slower — drives the pool width.
    /// Results are bit-identical to any other width.
    pub fn prepare_planned(&self, plan: &crate::plan::Plan) -> &Self {
        self.prepare(&RuntimeConfig::default().with_parallelism(plan.chunks))
    }

    /// Number of records with `A(x) ≥ tau`, i.e. `|D(τ)|` — one binary
    /// search per segment, summed. O(k log segment_size), bit-identical
    /// to the flat count.
    pub fn count_at_least(&self, tau: f64) -> usize {
        self.segments
            .iter()
            .map(|seg| seg.rank_index().cut_for(tau))
            .sum()
    }

    /// The canonical global rank of record `i` (0 = highest score):
    /// records strictly ahead of `i` in `(score desc, global index asc)`
    /// order, counted per segment against `i`'s key. Bit-identical to the
    /// flat [`RankIndex::rank_of`](crate::rank::RankIndex::rank_of).
    pub fn rank_of(&self, i: usize) -> usize {
        let score = self.score(i);
        let mut ahead = 0usize;
        for (c, seg) in self.segments.iter().enumerate() {
            let idx = seg.rank_index();
            let sorted = idx.sorted_scores();
            // Records with a strictly higher score all precede i.
            let gt = sorted.partition_point(|&s| s > score);
            ahead += gt;
            // Tied records precede i iff their global index is smaller.
            // Within the tie run the segment's order is ascending local
            // index, so one more binary search counts them.
            let tie_end = sorted.partition_point(|&s| s >= score);
            let base = self.offsets[c];
            if gt < tie_end && base < i {
                let local_bound = i - base;
                let ties = &idx.order()[gt..tie_end];
                ahead += ties.partition_point(|&local| (local as usize) < local_bound);
            }
        }
        // i itself is in its own tie run but `< local_bound` excludes it
        // only when counting its own segment; for i's segment
        // local i satisfies local < i - base ⟺ false, so it is never
        // self-counted.
        ahead
    }

    /// The `k`-th highest score (1-indexed; `k` clamped to `[1, n]`),
    /// found **without any global sorted array**: a binary search over
    /// the f64 bit space (scores are validated into `[0, 1]`, where bit
    /// order is value order) driven by the exact integer
    /// [`count_at_least`](Self::count_at_least). ≤ 63 probes, each
    /// O(k log segment_size); bit-identical to the flat
    /// [`RankIndex::kth_highest_score`](crate::rank::RankIndex::kth_highest_score) (which normalizes `-0.0` to
    /// `+0.0`, as the packed keys do).
    pub fn kth_highest_score(&self, k: usize) -> f64 {
        let k = k.clamp(1, self.len);
        let mut lo = 0u64;
        let mut hi = 1.0f64.to_bits();
        if self.count_at_least(f64::from_bits(hi)) >= k {
            return 1.0;
        }
        // Invariant: count_at_least(from_bits(lo)) ≥ k > count_at_least(from_bits(hi)).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.count_at_least(f64::from_bits(mid)) >= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        f64::from_bits(lo)
    }

    /// The threshold set `D(τ)` as global record indices in canonical
    /// order, produced by a **k-way merge over the segment rank heads**:
    /// each segment contributes its `D(τ)` rank prefix (a binary search,
    /// no scan), and a min-heap on the packed global keys stitches the
    /// prefixes. O(k log segment_size + |D(τ)| log k); bit-identical to
    /// the flat rank-prefix slice.
    pub fn stitched_prefix(&self, tau: f64) -> Vec<u32> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let cuts: Vec<usize> = self
            .segments
            .iter()
            .map(|seg| seg.rank_index().cut_for(tau))
            .collect();
        let total: usize = cuts.iter().sum();
        let mut out = Vec::with_capacity(total);
        // Heap of (packed key, segment, position-in-segment-prefix): the
        // packed key's low 32 bits are the global record index, so the
        // popped key *is* the output.
        let mut heap: BinaryHeap<Reverse<(u128, usize, usize)>> =
            BinaryHeap::with_capacity(self.segments.len());
        for (c, &cut) in cuts.iter().enumerate() {
            if cut > 0 {
                heap.push(Reverse((self.head_key(c, 0), c, 0)));
            }
        }
        while let Some(Reverse((key, c, pos))) = heap.pop() {
            out.push(key as u32);
            let next = pos + 1;
            if next < cuts[c] {
                heap.push(Reverse((self.head_key(c, next), c, next)));
            }
        }
        out
    }

    /// The packed global key of the record at rank `pos` within segment
    /// `c` — the same `(score desc, global index asc)` key the flat sort
    /// orders by, so heap order is canonical global order.
    fn head_key(&self, c: usize, pos: usize) -> u128 {
        let idx = self.segments[c].rank_index();
        let local = idx.order()[pos] as usize;
        rank::key(idx.sorted_scores()[pos], (self.offsets[c] + local) as u32)
    }

    /// Materializes `D(τ)` as owned `usize` indices in canonical order —
    /// the segmented counterpart of [`RankIndex::materialize`](crate::rank::RankIndex::materialize).
    pub fn materialize(&self, tau: f64) -> Vec<usize> {
        self.stitched_prefix(tau)
            .into_iter()
            .map(|i| i as usize)
            .collect()
    }

    /// [`materialize`](Self::materialize) unioned with `extras`
    /// (ascending, deduplicated record indices — a labeled-positive set):
    /// the stitched prefix first, then the extras below the cut
    /// (equivalently: score < τ), duplicate-free with no sort or dedup
    /// pass — the segmented counterpart of
    /// [`RankIndex::materialize_union`](crate::rank::RankIndex::materialize_union).
    pub fn materialize_union(&self, tau: f64, extras: &[usize]) -> Vec<usize> {
        let prefix = self.stitched_prefix(tau);
        let mut out = Vec::with_capacity(prefix.len() + extras.len());
        out.extend(prefix.into_iter().map(|i| i as usize));
        // A record is in D(τ) ⟺ its score ≥ τ ⟺ its rank < |D(τ)| — the
        // score test avoids the per-extra rank computation.
        out.extend(extras.iter().copied().filter(|&i| self.score(i) < tau));
        out
    }

    /// The top-`k` record indices by score (`k` clamped to `[1, n]`),
    /// including any records tied with the `k`-th score — exactly `D(τ)`
    /// for `τ` = the `k`-th highest score, in canonical order.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        self.materialize(self.kth_highest_score(k))
    }
}

/// A borrowed corpus view — flat or segmented — that the selector,
/// sampling and executor layers query uniformly. `Copy`, like the record
/// handles it stands in for; both layouts answer every method with
/// bit-identical results (see the [module docs](self)).
#[derive(Debug, Clone, Copy)]
pub enum Corpus<'a> {
    /// One contiguous [`ScoredDataset`] with a global [`RankIndex`](crate::rank::RankIndex).
    Flat(&'a ScoredDataset),
    /// Fixed-size segments, each with its own rank index.
    Segmented(&'a SegmentedDataset),
}

impl<'a> From<&'a ScoredDataset> for Corpus<'a> {
    fn from(data: &'a ScoredDataset) -> Self {
        Corpus::Flat(data)
    }
}

impl<'a> From<&'a SegmentedDataset> for Corpus<'a> {
    fn from(data: &'a SegmentedDataset) -> Self {
        Corpus::Segmented(data)
    }
}

impl Corpus<'_> {
    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            Corpus::Flat(d) => d.len(),
            Corpus::Segmented(d) => d.len(),
        }
    }

    /// True when the corpus has no records (construction forbids this, so
    /// this is always false; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Proxy score of record `i`.
    pub fn score(&self, i: usize) -> f64 {
        match self {
            Corpus::Flat(d) => d.score(i),
            Corpus::Segmented(d) => d.score(i),
        }
    }

    /// Canonical global rank of record `i` (0 = highest score).
    pub fn rank_of(&self, i: usize) -> usize {
        match self {
            Corpus::Flat(d) => d.rank_of(i),
            Corpus::Segmented(d) => d.rank_of(i),
        }
    }

    /// Number of records with `A(x) ≥ tau`, i.e. `|D(τ)|`.
    pub fn count_at_least(&self, tau: f64) -> usize {
        match self {
            Corpus::Flat(d) => d.count_at_least(tau),
            Corpus::Segmented(d) => d.count_at_least(tau),
        }
    }

    /// The `k`-th highest score (1-indexed; `k` clamped to `[1, n]`).
    pub fn kth_highest_score(&self, k: usize) -> f64 {
        match self {
            Corpus::Flat(d) => d.kth_highest_score(k),
            Corpus::Segmented(d) => d.kth_highest_score(k),
        }
    }

    /// The top-`k` record indices by score (ties at the `k`-th score
    /// included), in canonical order.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        match self {
            Corpus::Flat(d) => d.top_k(k).iter().map(|&i| i as usize).collect(),
            Corpus::Segmented(d) => d.top_k(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tied_scores(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7) % 10) as f64 / 10.0).collect()
    }

    fn flat_and_segmented(n: usize, segment_size: usize) -> (ScoredDataset, SegmentedDataset) {
        let scores = tied_scores(n);
        (
            ScoredDataset::new(scores.clone()).unwrap(),
            SegmentedDataset::new(scores, segment_size).unwrap(),
        )
    }

    #[test]
    fn construction_validates_and_segments() {
        let seg = SegmentedDataset::new(tied_scores(10), 3).unwrap();
        assert_eq!(seg.len(), 10);
        assert_eq!(seg.num_segments(), 4);
        assert_eq!(seg.segment_size(), 3);
        assert_eq!(seg.segment(3).len(), 1);
        assert_eq!(seg.offset(2), 6);
        assert_eq!(seg.locate(7), (2, 1));
        assert!(!seg.is_empty());
        assert!(matches!(
            SegmentedDataset::new(vec![], 4),
            Err(SupgError::EmptyDataset)
        ));
        assert!(matches!(
            SegmentedDataset::new(vec![0.5], 0),
            Err(SupgError::InvalidQuery(_))
        ));
        // Bad score reported with its global index.
        let mut scores = tied_scores(10);
        scores[7] = f64::NAN;
        assert!(matches!(
            SegmentedDataset::new(scores, 3),
            Err(SupgError::InvalidScore { index: 7, .. })
        ));
    }

    #[test]
    fn from_chunks_requires_alignment() {
        assert!(SegmentedDataset::from_chunks(vec![vec![0.1, 0.2], vec![0.3]]).is_ok());
        assert!(matches!(
            SegmentedDataset::from_chunks(vec![vec![0.1], vec![0.2, 0.3]]),
            Err(SupgError::InvalidQuery(_))
        ));
        assert!(matches!(
            SegmentedDataset::from_chunks(vec![vec![0.1], vec![]]),
            Err(SupgError::InvalidQuery(_))
        ));
        assert!(matches!(
            SegmentedDataset::from_chunks(vec![]),
            Err(SupgError::EmptyDataset)
        ));
    }

    #[test]
    fn global_queries_match_flat_at_every_segment_size() {
        let n = 501;
        for segment_size in [1, 7, 64, n / 3, n, 2 * n] {
            let (flat, seg) = flat_and_segmented(n, segment_size);
            for i in 0..n {
                assert_eq!(seg.score(i), flat.score(i), "score {i}");
                assert_eq!(
                    seg.rank_of(i),
                    flat.rank_of(i),
                    "rank_of({i}) seg_size={segment_size}"
                );
            }
            for tau in [-0.5, 0.0, 0.15, 0.3, 0.7, 0.9, 1.0, 1.5] {
                assert_eq!(
                    seg.count_at_least(tau),
                    flat.count_at_least(tau),
                    "count tau={tau} seg_size={segment_size}"
                );
                assert_eq!(
                    seg.materialize(tau),
                    flat.rank_index().materialize(tau),
                    "materialize tau={tau} seg_size={segment_size}"
                );
            }
            for k in [0, 1, 2, 50, n, n + 9] {
                assert_eq!(
                    seg.kth_highest_score(k).to_bits(),
                    flat.kth_highest_score(k).to_bits(),
                    "kth k={k} seg_size={segment_size}"
                );
                let flat_top: Vec<usize> = flat.top_k(k).iter().map(|&i| i as usize).collect();
                assert_eq!(
                    seg.top_k(k),
                    flat_top,
                    "top_k k={k} seg_size={segment_size}"
                );
            }
            let extras = [0, 3, 250, 500];
            for tau in [0.0, 0.3, 0.9, 1.5] {
                assert_eq!(
                    seg.materialize_union(tau, &extras),
                    flat.rank_index().materialize_union(tau, &extras),
                    "union tau={tau} seg_size={segment_size}"
                );
            }
        }
    }

    #[test]
    fn prepare_builds_in_parallel_with_identical_results() {
        let n = 40_000;
        let lazy = SegmentedDataset::new(tied_scores(n), 1 << 12).unwrap();
        for parallelism in [1, 4, 8] {
            let eager = SegmentedDataset::new(tied_scores(n), 1 << 12).unwrap();
            eager.prepare(&RuntimeConfig::default().with_parallelism(parallelism));
            for c in 0..lazy.num_segments() {
                assert_eq!(
                    lazy.segment(c).rank_index(),
                    eager.segment(c).rank_index(),
                    "segment {c} parallelism={parallelism}"
                );
            }
        }
    }

    #[test]
    fn corpus_views_agree() {
        let (flat, seg) = flat_and_segmented(200, 33);
        let fc = Corpus::from(&flat);
        let sc = Corpus::from(&seg);
        assert_eq!(fc.len(), sc.len());
        assert!(!fc.is_empty());
        for i in [0, 7, 150, 199] {
            assert_eq!(fc.score(i), sc.score(i));
            assert_eq!(fc.rank_of(i), sc.rank_of(i));
        }
        assert_eq!(fc.count_at_least(0.5), sc.count_at_least(0.5));
        assert_eq!(
            fc.kth_highest_score(10).to_bits(),
            sc.kth_highest_score(10).to_bits()
        );
        assert_eq!(fc.top_k(10), sc.top_k(10));
    }

    #[test]
    fn negative_zero_scores_rank_like_positive_zero() {
        let flat = ScoredDataset::new(vec![-0.0, 0.5, 0.0]).unwrap();
        let seg = SegmentedDataset::new(vec![-0.0, 0.5, 0.0], 2).unwrap();
        for i in 0..3 {
            assert_eq!(seg.rank_of(i), flat.rank_of(i), "rank {i}");
        }
        assert_eq!(seg.count_at_least(0.0), 3);
        assert_eq!(seg.kth_highest_score(2).to_bits(), 0.0f64.to_bits());
    }
}
