//! Joint-target (JT) queries: appendix A of the paper.
//!
//! A JT query demands both `Recall(R) ≥ γ_r` and `Precision(R) ≥ γ_p` with
//! probability `1 − δ`. No oracle budget can be promised a priori, so the
//! pipeline is:
//!
//! 1. allocate a stage budget `B`,
//! 2. run an RT selector (IS-CI-R for SUPG, U-CI-R for the uniform
//!    baseline) with budget `B` to hit the recall target,
//! 3. exhaustively oracle-label the returned set and drop the false
//!    positives — precision becomes 1 ≥ γ_p while recall is untouched
//!    (only negatives are removed).
//!
//! The figure-of-merit (paper Figure 15) is the *total* number of oracle
//! calls: `B` plus the labels needed to filter the stage-2 result.
//!
//! The pipeline lives in [`crate::session`] — run JT queries as
//! `SupgSession::over(&data).recall(γ_r).precision(γ_p).joint(B).run(..)`.
//! This module keeps the [`JointOutcome`] type and a deprecated
//! [`execute_joint`] compatibility shim.

use rand::RngCore;

use crate::error::SupgError;
use crate::executor::SelectionResult;
use crate::oracle::CachedOracle;
use crate::query::JointQuery;
use crate::selectors::ThresholdSelector;
use crate::ScoredDataset;

/// Outcome of a JT query (legacy shape; the session returns the unified
/// [`crate::QueryOutcome`] instead).
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// The final record set (all oracle-verified positives).
    pub result: SelectionResult,
    /// Oracle calls consumed by the RT stage.
    pub stage_calls: usize,
    /// Additional oracle calls consumed by the exhaustive filter.
    pub filter_calls: usize,
    /// The RT stage's threshold.
    pub tau: f64,
    /// Size of the candidate set before filtering.
    pub candidates: usize,
}

impl JointOutcome {
    /// Total oracle calls (the paper's Figure-15 metric).
    pub fn total_calls(&self) -> usize {
        self.stage_calls + self.filter_calls
    }
}

/// Executes a JT query with the given RT selector and stage budget.
///
/// The oracle's budget is managed internally: it is limited to
/// `stage_budget` for the RT stage and then lifted for the exhaustive
/// filter (JT queries are unbudgeted by definition).
///
/// # Errors
/// Propagates selector and oracle failures.
#[deprecated(
    since = "0.2.0",
    note = "use supg_core::SupgSession::over(..).recall(..).precision(..).joint(stage_budget).run(..)"
)]
pub fn execute_joint(
    data: &ScoredDataset,
    query: &JointQuery,
    stage_budget: usize,
    rt_selector: &dyn ThresholdSelector,
    oracle: &mut CachedOracle,
    rng: &mut dyn RngCore,
) -> Result<JointOutcome, SupgError> {
    let outcome = crate::session::exec_joint(data, query, stage_budget, rt_selector, oracle, rng)?;
    Ok(JointOutcome {
        result: outcome.result,
        stage_calls: outcome.stage_calls,
        filter_calls: outcome.filter_calls,
        tau: outcome.tau,
        candidates: outcome.candidates,
    })
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::selectors::{ImportanceRecall, SelectorConfig, UniformRecall};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use supg_stats::dist::{Bernoulli, Beta};

    fn rare(n: usize, seed: u64) -> (ScoredDataset, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Beta::new(0.05, 2.0);
        let mut scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = dist.sample(&mut rng);
            scores.push(a);
            labels.push(Bernoulli::new(a).sample(&mut rng));
        }
        (ScoredDataset::new(scores).unwrap(), labels)
    }

    #[test]
    fn joint_query_achieves_both_targets() {
        let (data, labels) = rare(30_000, 61);
        let query = JointQuery::new(0.9, 0.9, 0.05).unwrap();
        let mut failures = 0;
        for t in 0..10 {
            let mut oracle = CachedOracle::from_labels(labels.clone(), 0);
            let mut rng = StdRng::seed_from_u64(6100 + t);
            let out = execute_joint(
                &data,
                &query,
                1_000,
                &ImportanceRecall::new(SelectorConfig::default()),
                &mut oracle,
                &mut rng,
            )
            .unwrap();
            let pr = evaluate(out.result.indices(), &labels);
            // Precision is exactly 1 after exhaustive filtering.
            assert_eq!(pr.precision, 1.0);
            if pr.recall < 0.9 {
                failures += 1;
            }
        }
        assert!(failures <= 1, "{failures}/10 recall failures");
    }

    #[test]
    fn filter_only_pays_for_unlabeled_candidates() {
        let (data, labels) = rare(10_000, 62);
        let query = JointQuery::new(0.8, 0.9, 0.05).unwrap();
        let mut oracle = CachedOracle::from_labels(labels, 0);
        let mut rng = StdRng::seed_from_u64(63);
        let out = execute_joint(
            &data,
            &query,
            500,
            &ImportanceRecall::new(SelectorConfig::default()),
            &mut oracle,
            &mut rng,
        )
        .unwrap();
        assert!(out.stage_calls <= 500);
        assert!(out.filter_calls <= out.candidates);
        assert_eq!(out.total_calls(), out.stage_calls + out.filter_calls);
    }

    #[test]
    fn importance_uses_fewer_total_calls_than_uniform() {
        // SUPG's advantage in Figure 15: the IS recall stage returns a
        // smaller candidate set, so the exhaustive filter is cheaper.
        let (data, labels) = rare(30_000, 64);
        let query = JointQuery::new(0.75, 0.9, 0.05).unwrap();
        let mut is_total = 0usize;
        let mut u_total = 0usize;
        for t in 0..5 {
            let mut o1 = CachedOracle::from_labels(labels.clone(), 0);
            let mut o2 = CachedOracle::from_labels(labels.clone(), 0);
            let mut r1 = StdRng::seed_from_u64(6400 + t);
            let mut r2 = StdRng::seed_from_u64(6400 + t);
            is_total += execute_joint(
                &data,
                &query,
                1_000,
                &ImportanceRecall::new(SelectorConfig::default()),
                &mut o1,
                &mut r1,
            )
            .unwrap()
            .total_calls();
            u_total += execute_joint(
                &data,
                &query,
                1_000,
                &UniformRecall::new(SelectorConfig::default()),
                &mut o2,
                &mut r2,
            )
            .unwrap()
            .total_calls();
        }
        assert!(
            is_total < u_total,
            "importance total {is_total} vs uniform {u_total}"
        );
    }
}
