//! Proxy-scored dataset view shared by selectors, executor and metrics.

use std::sync::{Arc, OnceLock};

use crate::error::SupgError;
use crate::rank::RankIndex;
use crate::runtime::RuntimeConfig;

/// A dataset's proxy scores together with its (lazily built) global
/// [`RankIndex`].
///
/// SUPG evaluates the proxy on every record up front (proxy calls are
/// assumed cheap); the algorithms then work only with scores and record
/// indices. The rank index — the descending-score permutation, its
/// inverse, and the sorted score view — is built **once** per dataset and
/// reused for:
///
/// * `|D(τ)|`, membership and set materialization (`count_at_least`,
///   `select`, [`RankIndex::materialize_union`]),
/// * the top-`k` cutoff of the two-stage precision estimator
///   (`kth_highest_score`),
/// * canonical ordering of oracle samples ([`crate::sample`]),
/// * fast precision/recall evaluation in [`crate::metrics`].
///
/// Construction only validates (O(n)); the O(n log n) sort happens on
/// first use — serially via [`rank_index`](ScoredDataset::rank_index), or
/// eagerly on the worker pool via
/// [`prepare_rank_index`](ScoredDataset::prepare_rank_index) (what
/// [`crate::prepared::PreparedDataset::prepare`] calls). Both produce
/// bit-identical indexes, so when and how the index is built is
/// unobservable in results. The index sits behind an `Arc`'d [`OnceLock`],
/// so clones of a dataset made *after* the build share it.
#[derive(Debug, Clone)]
pub struct ScoredDataset {
    scores: Vec<f64>,
    index: OnceLock<Arc<RankIndex>>,
}

impl ScoredDataset {
    /// Validates scores. The rank index is built lazily on first use.
    ///
    /// # Errors
    /// [`SupgError::EmptyDataset`] for zero records;
    /// [`SupgError::InvalidScore`] if any score is non-finite or outside
    /// `[0, 1]`.
    pub fn new(scores: Vec<f64>) -> Result<Self, SupgError> {
        if scores.is_empty() {
            return Err(SupgError::EmptyDataset);
        }
        if scores.len() > u32::MAX as usize {
            return Err(SupgError::InvalidQuery(
                "datasets above u32::MAX records are unsupported".to_owned(),
            ));
        }
        for (index, &value) in scores.iter().enumerate() {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(SupgError::InvalidScore { index, value });
            }
        }
        Ok(Self {
            scores,
            index: OnceLock::new(),
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when the dataset has no records (construction forbids this,
    /// so this is always false; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Proxy scores in record order.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Proxy score of record `i`.
    pub fn score(&self, i: usize) -> f64 {
        self.scores[i]
    }

    /// The global rank index, built serially on first call and cached.
    pub fn rank_index(&self) -> &RankIndex {
        self.index
            .get_or_init(|| Arc::new(RankIndex::build_serial(&self.scores)))
    }

    /// The global rank index, built **on the worker pool** (chunked
    /// sorts combined in pairwise merge rounds) when absent.
    /// Bit-identical to the serial build at any
    /// `parallelism`; a no-op when the index already exists.
    pub fn prepare_rank_index(&self, rt: &RuntimeConfig) -> &RankIndex {
        self.index
            .get_or_init(|| Arc::new(RankIndex::build(&self.scores, rt)))
    }

    /// A shared handle to the rank index (building it serially if absent),
    /// for callers that outlive the dataset borrow (benchmarks, services).
    pub fn share_rank_index(&self) -> Arc<RankIndex> {
        self.rank_index();
        Arc::clone(self.index.get().expect("index just initialized"))
    }

    /// Record indices in descending score order (ties ascending by index).
    pub fn order_desc(&self) -> &[u32] {
        self.rank_index().order()
    }

    /// Canonical rank of record `i` (0 = highest score).
    pub fn rank_of(&self, i: usize) -> usize {
        self.rank_index().rank_of(i)
    }

    /// Number of records with `A(x) ≥ tau`, i.e. `|D(τ)|`.
    pub fn count_at_least(&self, tau: f64) -> usize {
        self.rank_index().cut_for(tau)
    }

    /// Record indices with `A(x) ≥ tau`, in descending score order.
    pub fn select(&self, tau: f64) -> &[u32] {
        self.rank_index().select(tau)
    }

    /// The `k`-th highest score (1-indexed). `k` is clamped to `[1, n]`.
    pub fn kth_highest_score(&self, k: usize) -> f64 {
        self.rank_index().kth_highest_score(k)
    }

    /// The top-`k` record indices by score (k clamped to `[1, n]`),
    /// including any records tied with the `k`-th score — so the returned
    /// slice is exactly `D(τ)` for `τ` = the `k`-th highest score.
    pub fn top_k(&self, k: usize) -> &[u32] {
        self.select(self.kth_highest_score(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> ScoredDataset {
        ScoredDataset::new(vec![0.1, 0.9, 0.5, 0.9, 0.0]).unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            ScoredDataset::new(vec![]).unwrap_err(),
            SupgError::EmptyDataset
        );
        assert!(matches!(
            ScoredDataset::new(vec![0.5, f64::NAN]),
            Err(SupgError::InvalidScore { index: 1, .. })
        ));
        assert!(matches!(
            ScoredDataset::new(vec![-0.1]),
            Err(SupgError::InvalidScore { index: 0, .. })
        ));
    }

    #[test]
    fn order_is_descending() {
        let d = dataset();
        let sorted: Vec<f64> = d
            .order_desc()
            .iter()
            .map(|&i| d.score(i as usize))
            .collect();
        assert!(sorted.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rank_is_the_inverse_permutation() {
        let d = dataset();
        for (r, &i) in d.order_desc().iter().enumerate() {
            assert_eq!(d.rank_of(i as usize), r);
        }
    }

    #[test]
    fn lazy_serial_and_pool_builds_agree() {
        let scores: Vec<f64> = (0..40_000)
            .map(|i| ((i * 13) % 101) as f64 / 101.0)
            .collect();
        let lazy = ScoredDataset::new(scores.clone()).unwrap();
        let pooled = ScoredDataset::new(scores).unwrap();
        pooled.prepare_rank_index(&RuntimeConfig::default().with_parallelism(4));
        assert_eq!(lazy.rank_index(), pooled.rank_index());
        // share_rank_index aliases the cached build.
        assert!(std::ptr::eq(
            Arc::as_ptr(&pooled.share_rank_index()),
            pooled.rank_index()
        ));
    }

    #[test]
    fn count_at_least_handles_ties_and_bounds() {
        let d = dataset();
        assert_eq!(d.count_at_least(0.9), 2); // both 0.9 records
        assert_eq!(d.count_at_least(0.91), 0);
        assert_eq!(d.count_at_least(0.5), 3);
        assert_eq!(d.count_at_least(0.0), 5);
        assert_eq!(d.count_at_least(f64::INFINITY), 0);
    }

    #[test]
    fn select_returns_matching_indices() {
        let d = dataset();
        let mut sel: Vec<u32> = d.select(0.5).to_vec();
        sel.sort_unstable();
        assert_eq!(sel, vec![1, 2, 3]);
        assert!(d.select(f64::INFINITY).is_empty());
    }

    #[test]
    fn kth_highest_score_clamps() {
        let d = dataset();
        assert_eq!(d.kth_highest_score(1), 0.9);
        assert_eq!(d.kth_highest_score(2), 0.9);
        assert_eq!(d.kth_highest_score(3), 0.5);
        assert_eq!(d.kth_highest_score(0), 0.9); // clamped to 1
        assert_eq!(d.kth_highest_score(99), 0.0); // clamped to n
    }

    #[test]
    fn top_k_includes_ties() {
        let d = dataset();
        // k = 1 hits the tied 0.9 score, so both tied records come back.
        assert_eq!(d.top_k(1).len(), 2);
        assert_eq!(d.top_k(3).len(), 3);
        assert_eq!(d.top_k(5).len(), 5);
    }
}
