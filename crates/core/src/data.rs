//! Proxy-scored dataset view shared by selectors, executor and metrics.

use crate::error::SupgError;

/// A dataset's proxy scores together with a descending-score index.
///
/// SUPG evaluates the proxy on every record up front (proxy calls are
/// assumed cheap); the algorithms then work only with scores and record
/// indices. The sorted order is built once and reused for:
///
/// * `|D(τ)|` and membership queries (`count_at_least`, `select`),
/// * the top-`k` cutoff of the two-stage precision estimator
///   (`kth_highest_score`),
/// * fast precision/recall evaluation in [`crate::metrics`].
#[derive(Debug, Clone)]
pub struct ScoredDataset {
    scores: Vec<f64>,
    /// Record indices sorted by descending score (ties in arbitrary order).
    order: Vec<u32>,
    /// Scores in descending order (`sorted[i] = scores[order[i]]`), kept
    /// separately so binary searches stay cache-friendly.
    sorted: Vec<f64>,
}

impl ScoredDataset {
    /// Validates scores and builds the sorted index.
    ///
    /// # Errors
    /// [`SupgError::EmptyDataset`] for zero records;
    /// [`SupgError::InvalidScore`] if any score is non-finite or outside
    /// `[0, 1]`.
    pub fn new(scores: Vec<f64>) -> Result<Self, SupgError> {
        if scores.is_empty() {
            return Err(SupgError::EmptyDataset);
        }
        if scores.len() > u32::MAX as usize {
            return Err(SupgError::InvalidQuery(
                "datasets above u32::MAX records are unsupported".to_owned(),
            ));
        }
        for (index, &value) in scores.iter().enumerate() {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(SupgError::InvalidScore { index, value });
            }
        }
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores validated finite")
        });
        let sorted = order.iter().map(|&i| scores[i as usize]).collect();
        Ok(Self {
            scores,
            order,
            sorted,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Always false (construction forbids empty datasets).
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Proxy scores in record order.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Proxy score of record `i`.
    pub fn score(&self, i: usize) -> f64 {
        self.scores[i]
    }

    /// Record indices in descending score order.
    pub fn order_desc(&self) -> &[u32] {
        &self.order
    }

    /// Number of records with `A(x) ≥ tau`, i.e. `|D(τ)|`.
    pub fn count_at_least(&self, tau: f64) -> usize {
        // `sorted` is descending: find the first position below tau.
        self.sorted.partition_point(|&s| s >= tau)
    }

    /// Record indices with `A(x) ≥ tau`, in descending score order.
    pub fn select(&self, tau: f64) -> &[u32] {
        &self.order[..self.count_at_least(tau)]
    }

    /// The `k`-th highest score (1-indexed). `k` is clamped to `[1, n]`.
    pub fn kth_highest_score(&self, k: usize) -> f64 {
        let k = k.clamp(1, self.sorted.len());
        self.sorted[k - 1]
    }

    /// The top-`k` record indices by score (k clamped to `[1, n]`),
    /// including any records tied with the `k`-th score — so the returned
    /// slice is exactly `D(τ)` for `τ` = the `k`-th highest score.
    pub fn top_k(&self, k: usize) -> &[u32] {
        self.select(self.kth_highest_score(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> ScoredDataset {
        ScoredDataset::new(vec![0.1, 0.9, 0.5, 0.9, 0.0]).unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            ScoredDataset::new(vec![]).unwrap_err(),
            SupgError::EmptyDataset
        );
        assert!(matches!(
            ScoredDataset::new(vec![0.5, f64::NAN]),
            Err(SupgError::InvalidScore { index: 1, .. })
        ));
        assert!(matches!(
            ScoredDataset::new(vec![-0.1]),
            Err(SupgError::InvalidScore { index: 0, .. })
        ));
    }

    #[test]
    fn order_is_descending() {
        let d = dataset();
        let sorted: Vec<f64> = d
            .order_desc()
            .iter()
            .map(|&i| d.score(i as usize))
            .collect();
        assert!(sorted.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn count_at_least_handles_ties_and_bounds() {
        let d = dataset();
        assert_eq!(d.count_at_least(0.9), 2); // both 0.9 records
        assert_eq!(d.count_at_least(0.91), 0);
        assert_eq!(d.count_at_least(0.5), 3);
        assert_eq!(d.count_at_least(0.0), 5);
        assert_eq!(d.count_at_least(f64::INFINITY), 0);
    }

    #[test]
    fn select_returns_matching_indices() {
        let d = dataset();
        let mut sel: Vec<u32> = d.select(0.5).to_vec();
        sel.sort_unstable();
        assert_eq!(sel, vec![1, 2, 3]);
        assert!(d.select(f64::INFINITY).is_empty());
    }

    #[test]
    fn kth_highest_score_clamps() {
        let d = dataset();
        assert_eq!(d.kth_highest_score(1), 0.9);
        assert_eq!(d.kth_highest_score(2), 0.9);
        assert_eq!(d.kth_highest_score(3), 0.5);
        assert_eq!(d.kth_highest_score(0), 0.9); // clamped to 1
        assert_eq!(d.kth_highest_score(99), 0.0); // clamped to n
    }

    #[test]
    fn top_k_includes_ties() {
        let d = dataset();
        // k = 1 hits the tied 0.9 score, so both tied records come back.
        assert_eq!(d.top_k(1).len(), 2);
        assert_eq!(d.top_k(3).len(), 3);
        assert_eq!(d.top_k(5).len(), 5);
    }
}
