//! Result-quality evaluation: precision and recall against ground truth.

/// Precision/recall of a returned record set (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// `|R ∩ O⁺| / |R|`. The empty set is vacuously precise (1.0), matching
    /// the paper's observation that ∅ is always a valid PT result.
    pub precision: f64,
    /// `|R ∩ O⁺| / |O⁺|`. When the dataset has no positives, recall is
    /// vacuously 1.0.
    pub recall: f64,
    /// `|R|` — the returned set size.
    pub returned: usize,
    /// `|R ∩ O⁺|` — true positives returned.
    pub true_positives: usize,
    /// `|O⁺|` — positives in the dataset.
    pub dataset_positives: usize,
}

/// Evaluates a sorted-or-not index set against the ground-truth labels.
///
/// # Panics
/// Panics if an index is out of range for `labels`.
pub fn evaluate(result_indices: &[usize], labels: &[bool]) -> PrecisionRecall {
    let dataset_positives = labels.iter().filter(|&&l| l).count();
    let true_positives = result_indices.iter().filter(|&&i| labels[i]).count();
    let returned = result_indices.len();
    let precision = if returned == 0 {
        1.0
    } else {
        true_positives as f64 / returned as f64
    };
    let recall = if dataset_positives == 0 {
        1.0
    } else {
        true_positives as f64 / dataset_positives as f64
    };
    PrecisionRecall {
        precision,
        recall,
        returned,
        true_positives,
        dataset_positives,
    }
}

/// Precision and recall of the pure threshold set `D(τ) = {x : A(x) ≥ τ}`
/// without the `R1` union — used by drift experiments that apply a fixed
/// pre-set threshold to new data (paper §6.2).
pub fn evaluate_threshold(scores: &[f64], labels: &[bool], tau: f64) -> PrecisionRecall {
    assert_eq!(
        scores.len(),
        labels.len(),
        "evaluate_threshold: length mismatch"
    );
    let dataset_positives = labels.iter().filter(|&&l| l).count();
    let mut returned = 0usize;
    let mut true_positives = 0usize;
    for (&s, &l) in scores.iter().zip(labels) {
        if s >= tau {
            returned += 1;
            if l {
                true_positives += 1;
            }
        }
    }
    let precision = if returned == 0 {
        1.0
    } else {
        true_positives as f64 / returned as f64
    };
    let recall = if dataset_positives == 0 {
        1.0
    } else {
        true_positives as f64 / dataset_positives as f64
    };
    PrecisionRecall {
        precision,
        recall,
        returned,
        true_positives,
        dataset_positives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let labels = vec![true, false, true, false, true];
        let pr = evaluate(&[0, 1, 2], &labels);
        assert_eq!(pr.true_positives, 2);
        assert_eq!(pr.returned, 3);
        assert_eq!(pr.dataset_positives, 3);
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_is_vacuously_precise() {
        let labels = vec![true, false];
        let pr = evaluate(&[], &labels);
        assert_eq!(pr.precision, 1.0);
        assert_eq!(pr.recall, 0.0);
    }

    #[test]
    fn no_positives_gives_vacuous_recall() {
        let labels = vec![false, false];
        let pr = evaluate(&[0], &labels);
        assert_eq!(pr.recall, 1.0);
        assert_eq!(pr.precision, 0.0);
    }

    #[test]
    fn threshold_evaluation_matches_set_evaluation() {
        let scores = vec![0.9, 0.2, 0.7, 0.4];
        let labels = vec![true, false, false, true];
        let pr = evaluate_threshold(&scores, &labels, 0.5);
        // D(0.5) = {0, 2}: one true positive of two returned, of two total.
        assert_eq!(pr.returned, 2);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infinite_threshold_selects_nothing() {
        let scores = vec![0.9, 0.2];
        let labels = vec![true, false];
        let pr = evaluate_threshold(&scores, &labels, f64::INFINITY);
        assert_eq!(pr.returned, 0);
        assert_eq!(pr.precision, 1.0);
    }
}
