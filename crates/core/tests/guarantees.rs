//! Trial-level validation of the paper's headline claim: a guaranteed
//! selector misses its target with probability at most `δ`.
//!
//! For each of the four CI selectors (`U-CI-R`, `U-CI-P`, `IS-CI-R`,
//! `IS-CI-P`) the suite runs many independently seeded queries on a preset
//! mixture dataset and checks the *empirical* failure rate against
//! `δ` plus binomial sampling slack: with `T` trials the failure count is
//! `Binomial(T, p)` for some `p ≤ δ`, so observing more than
//! `T·δ + 3·√(T·δ(1−δ))` failures (≈ 3σ above the worst conforming mean)
//! indicates a broken guarantee, not bad luck.
//!
//! The 200-trial configurations are `#[ignore]`d to keep tier-1 fast; CI
//! runs them in a dedicated job via `cargo test -q -- --ignored`. Quick
//! 40-trial smoke versions always run.
//!
//! Trials are fanned out over threads with seeds split **by trial index**
//! (`supg_core::runtime::split_seed`), so the counts are reproducible
//! regardless of scheduling.

use std::thread;

use supg_core::metrics::evaluate;
use supg_core::runtime::{parallel_map, split_seed, RuntimeConfig};
use supg_core::selectors::SelectorConfig;
use supg_core::{
    CachedOracle, FaultPlan, FaultyOracle, ResilientOracle, RetryPolicy, SamplerStrategy,
    ScoredDataset, SelectorKind, SupgSession, TargetKind,
};
use supg_datasets::{Preset, PresetKind};

const DELTA: f64 = 0.05;
const BUDGET: usize = 1_000;
const QUICK_TRIALS: usize = 40;
const FULL_TRIALS: usize = 200;

/// The mixture-simulated night-street preset: rare-ish positives (4%) with
/// an informative but miscalibrated proxy — the regime the guarantees are
/// interesting in.
fn workload() -> (ScoredDataset, Vec<bool>) {
    let (scores, labels) = Preset::new(PresetKind::NightStreet)
        .generate_sized(0xDA7A, 20_000)
        .into_parts();
    (ScoredDataset::new(scores).unwrap(), labels)
}

/// Highest failure count compatible with a true failure probability ≤ δ:
/// the binomial mean plus three standard deviations, rounded up.
fn max_allowed_failures(trials: usize, delta: f64) -> usize {
    let t = trials as f64;
    (t * delta + 3.0 * (t * delta * (1.0 - delta)).sqrt()).ceil() as usize
}

/// Runs `trials` seeded queries under the given selector tuning (the
/// CDF-sampler configurations run the exact same harness as the default
/// path) and counts how often the achieved recall/precision lands below
/// `gamma`. Trials fan out over the same `runtime::parallel_map` pool the
/// pipeline uses, one trial per batch.
fn count_failures_with(
    kind: SelectorKind,
    target: TargetKind,
    gamma: f64,
    trials: usize,
    base_seed: u64,
    cfg: SelectorConfig,
) -> usize {
    count_failures_inner(kind, target, gamma, trials, base_seed, cfg, None)
}

/// Like [`count_failures_with`], but every trial's oracle suffers
/// injected transient faults at `transient_rate`, healed by the default
/// retry policy. The statistical guarantee must be indistinguishable
/// from the fault-free harness: retries reproduce the exact label
/// stream, so `p ≤ δ` still holds trial by trial.
#[allow(clippy::too_many_arguments)]
fn count_failures_inner(
    kind: SelectorKind,
    target: TargetKind,
    gamma: f64,
    trials: usize,
    base_seed: u64,
    cfg: SelectorConfig,
    transient_rate: Option<f64>,
) -> usize {
    let (data, labels) = workload();
    let pool = RuntimeConfig::default()
        .with_parallelism(thread::available_parallelism().map_or(4, |n| n.get()))
        .with_batch_size(1);
    let trial_ids: Vec<u64> = (0..trials as u64).collect();
    let failed = parallel_map(&pool, &trial_ids, |&trial| {
        let base = CachedOracle::from_labels(labels.clone(), BUDGET);
        // Wrap each trial's oracle in its own deterministic fault plan
        // (split by trial index) plus the retry runtime.
        let mut faulted;
        let mut clean;
        let oracle: &mut dyn supg_core::SessionOracle = match transient_rate {
            Some(rate) => {
                let plan =
                    FaultPlan::new(split_seed(base_seed ^ 0xFA17, trial)).with_transient_rate(rate);
                faulted =
                    ResilientOracle::new(FaultyOracle::new(base, plan), RetryPolicy::default());
                &mut faulted
            }
            None => {
                clean = base;
                &mut clean
            }
        };
        let session = SupgSession::over(&data)
            .delta(DELTA)
            .budget(BUDGET)
            .selector(kind)
            .selector_config(cfg)
            .seed(split_seed(base_seed, trial));
        let session = match target {
            TargetKind::Recall => session.recall(gamma),
            TargetKind::Precision => session.precision(gamma),
        };
        let outcome = session.run(oracle).expect("trial failed");
        assert!(
            outcome.oracle_calls <= BUDGET,
            "budget violation: {} > {BUDGET}",
            outcome.oracle_calls
        );
        let quality = evaluate(outcome.result.indices(), &labels);
        let achieved = match target {
            TargetKind::Recall => quality.recall,
            TargetKind::Precision => quality.precision,
        };
        achieved < gamma
    });
    failed.into_iter().filter(|&f| f).count()
}

fn assert_guarantee_holds(
    kind: SelectorKind,
    target: TargetKind,
    gamma: f64,
    trials: usize,
    base_seed: u64,
) {
    assert_guarantee_holds_with(
        kind,
        target,
        gamma,
        trials,
        base_seed,
        SelectorConfig::default(),
    );
}

fn assert_guarantee_holds_with(
    kind: SelectorKind,
    target: TargetKind,
    gamma: f64,
    trials: usize,
    base_seed: u64,
    cfg: SelectorConfig,
) {
    let failures = count_failures_with(kind, target, gamma, trials, base_seed, cfg);
    let allowed = max_allowed_failures(trials, DELTA);
    let name = kind.paper_name(target).unwrap();
    assert!(
        failures <= allowed,
        "{name} γ={gamma} ({:?} sampler): {failures}/{trials} failures exceeds δ={DELTA} \
         plus binomial slack (allowed {allowed})",
        cfg.sampler
    );
}

/// The default tuning with the CDF fallback sampler — the cold-start
/// serving path's draw backend, whose guarantee must hold empirically
/// just like the alias path's.
fn cdf_cfg() -> SelectorConfig {
    SelectorConfig::default().with_sampler(SamplerStrategy::Cdf)
}

// --- Quick smoke versions (always run; tier-1) ---

#[test]
fn u_ci_r_guarantee_smoke() {
    assert_guarantee_holds(
        SelectorKind::Uniform,
        TargetKind::Recall,
        0.9,
        QUICK_TRIALS,
        101,
    );
}

#[test]
fn u_ci_p_guarantee_smoke() {
    assert_guarantee_holds(
        SelectorKind::Uniform,
        TargetKind::Precision,
        0.9,
        QUICK_TRIALS,
        102,
    );
}

#[test]
fn is_ci_r_guarantee_smoke() {
    assert_guarantee_holds(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.9,
        QUICK_TRIALS,
        103,
    );
}

#[test]
fn is_ci_p_guarantee_smoke() {
    assert_guarantee_holds(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.9,
        QUICK_TRIALS,
        104,
    );
}

#[test]
fn is_ci_r_cdf_sampler_guarantee_smoke() {
    assert_guarantee_holds_with(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.9,
        QUICK_TRIALS,
        105,
        cdf_cfg(),
    );
}

#[test]
fn is_ci_p_cdf_sampler_guarantee_smoke() {
    assert_guarantee_holds_with(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.9,
        QUICK_TRIALS,
        106,
        cdf_cfg(),
    );
}

// --- Fault-injected configurations: the guarantee must survive a flaky
// oracle healed by the retry runtime (5% transient rate) ---

const FAULT_RATE: f64 = 0.05;

fn assert_faulty_guarantee_holds(
    kind: SelectorKind,
    target: TargetKind,
    gamma: f64,
    trials: usize,
    base_seed: u64,
) {
    let failures = count_failures_inner(
        kind,
        target,
        gamma,
        trials,
        base_seed,
        SelectorConfig::default(),
        Some(FAULT_RATE),
    );
    let allowed = max_allowed_failures(trials, DELTA);
    let name = kind.paper_name(target).unwrap();
    assert!(
        failures <= allowed,
        "{name} γ={gamma} under {FAULT_RATE:.0}%-transient faults: {failures}/{trials} \
         failures exceeds δ={DELTA} plus binomial slack (allowed {allowed})"
    );
}

#[test]
fn is_ci_r_guarantee_smoke_under_transient_faults() {
    assert_faulty_guarantee_holds(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.9,
        QUICK_TRIALS,
        107,
    );
}

#[test]
fn is_ci_p_guarantee_smoke_under_transient_faults() {
    assert_faulty_guarantee_holds(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.9,
        QUICK_TRIALS,
        108,
    );
}

// --- Full 200-trial configurations (γ ∈ {0.9, 0.95}, δ = 0.05) ---
// Long: run with `cargo test -q -- --ignored` (the CI guarantee-suite job).

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn u_ci_r_gamma_090_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::Uniform,
        TargetKind::Recall,
        0.9,
        FULL_TRIALS,
        201,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn u_ci_r_gamma_095_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::Uniform,
        TargetKind::Recall,
        0.95,
        FULL_TRIALS,
        202,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn u_ci_p_gamma_090_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::Uniform,
        TargetKind::Precision,
        0.9,
        FULL_TRIALS,
        203,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn u_ci_p_gamma_095_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::Uniform,
        TargetKind::Precision,
        0.95,
        FULL_TRIALS,
        204,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_r_gamma_090_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.9,
        FULL_TRIALS,
        205,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_r_gamma_095_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.95,
        FULL_TRIALS,
        206,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_p_gamma_090_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.9,
        FULL_TRIALS,
        207,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_p_gamma_095_failure_rate_within_delta() {
    assert_guarantee_holds(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.95,
        FULL_TRIALS,
        208,
    );
}

// --- CDF-sampler configurations (the cold-start serving path) ---

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_r_cdf_gamma_090_failure_rate_within_delta() {
    assert_guarantee_holds_with(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.9,
        FULL_TRIALS,
        209,
        cdf_cfg(),
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_r_cdf_gamma_095_failure_rate_within_delta() {
    assert_guarantee_holds_with(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.95,
        FULL_TRIALS,
        210,
        cdf_cfg(),
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_p_cdf_gamma_090_failure_rate_within_delta() {
    assert_guarantee_holds_with(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.9,
        FULL_TRIALS,
        211,
        cdf_cfg(),
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_p_cdf_gamma_095_failure_rate_within_delta() {
    assert_guarantee_holds_with(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.95,
        FULL_TRIALS,
        212,
        cdf_cfg(),
    );
}

// --- Fault-injected full configurations ---

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_r_faulty_gamma_090_failure_rate_within_delta() {
    assert_faulty_guarantee_holds(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.9,
        FULL_TRIALS,
        213,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_r_faulty_gamma_095_failure_rate_within_delta() {
    assert_faulty_guarantee_holds(
        SelectorKind::ImportanceSampling,
        TargetKind::Recall,
        0.95,
        FULL_TRIALS,
        214,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_p_faulty_gamma_090_failure_rate_within_delta() {
    assert_faulty_guarantee_holds(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.9,
        FULL_TRIALS,
        215,
    );
}

#[test]
#[ignore = "long statistical suite; run with --ignored"]
fn is_ci_p_faulty_gamma_095_failure_rate_within_delta() {
    assert_faulty_guarantee_holds(
        SelectorKind::TwoStage,
        TargetKind::Precision,
        0.95,
        FULL_TRIALS,
        216,
    );
}

// --- The slack arithmetic itself ---

#[test]
fn binomial_slack_is_sane() {
    // 200 trials at δ = 0.05: mean 10, σ ≈ 3.08 → allow ≤ 20.
    assert_eq!(max_allowed_failures(200, 0.05), 20);
    // 40 trials: mean 2, σ ≈ 1.38 → allow ≤ 7.
    assert_eq!(max_allowed_failures(40, 0.05), 7);
}
