//! Determinism contract of the batched multi-threaded oracle runtime:
//! a fixed seed must yield an identical [`QueryOutcome`] at every
//! `parallelism` / `batch_size` setting, for every selector in the
//! registry and for the JT pipeline.
//!
//! The contract holds because sampling stays on the session thread (one
//! sequential RNG stream, the same as the historical pipeline) and only
//! oracle labeling — a pure function of the record index — fans out over
//! the worker pool. See `supg_core::runtime` for the full statement.

use supg_core::{
    CachedOracle, Oracle, QueryOutcome, RuntimeConfig, ScoredDataset, SelectorKind, SupgSession,
    TargetKind,
};
use supg_datasets::{Preset, PresetKind};

/// A mixture-simulated real dataset in the SUPG regime (rare positives,
/// informative proxy).
fn workload() -> (ScoredDataset, Vec<bool>) {
    let (scores, labels) = Preset::new(PresetKind::NightStreet)
        .generate_sized(17, 20_000)
        .into_parts();
    (ScoredDataset::new(scores).unwrap(), labels)
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.result.indices(), b.result.indices(), "{context}: result");
    assert_eq!(a.tau, b.tau, "{context}: tau");
    assert_eq!(a.selector, b.selector, "{context}: selector");
    assert_eq!(a.oracle_calls, b.oracle_calls, "{context}: oracle_calls");
    assert_eq!(a.stage_calls, b.stage_calls, "{context}: stage_calls");
    assert_eq!(a.filter_calls, b.filter_calls, "{context}: filter_calls");
    assert_eq!(a.sample_draws, b.sample_draws, "{context}: sample_draws");
    assert_eq!(
        a.sample_positives, b.sample_positives,
        "{context}: sample_positives"
    );
    assert_eq!(a.candidates, b.candidates, "{context}: candidates");
    assert_eq!(a.joint, b.joint, "{context}: joint");
}

#[test]
fn every_selector_is_deterministic_across_parallelism() {
    let (data, labels) = workload();
    for (kind, target) in SelectorKind::registry() {
        let run = |parallelism: usize, batch_size: usize| {
            let mut oracle = CachedOracle::from_labels(labels.clone(), 1_000);
            let session = SupgSession::over(&data)
                .budget(1_000)
                .selector(kind)
                .seed(0xD15E)
                .parallelism(parallelism)
                .batch_size(batch_size);
            let session = match target {
                TargetKind::Recall => session.recall(0.9),
                TargetKind::Precision => session.precision(0.9),
            };
            session.run(&mut oracle).unwrap()
        };
        let name = kind.paper_name(target).unwrap();
        let sequential = run(1, 64);
        for parallelism in [2, 8] {
            for batch_size in [5, 64] {
                let parallel = run(parallelism, batch_size);
                assert_outcomes_identical(
                    &sequential,
                    &parallel,
                    &format!("{name} parallelism={parallelism} batch={batch_size}"),
                );
            }
        }
    }
}

#[test]
fn joint_pipeline_is_deterministic_across_parallelism() {
    let (data, labels) = workload();
    let run = |parallelism: usize, batch_size: usize| {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 0);
        SupgSession::over(&data)
            .recall(0.8)
            .precision(0.9)
            .joint(800)
            .seed(0x107)
            .parallelism(parallelism)
            .batch_size(batch_size)
            .run(&mut oracle)
            .unwrap()
    };
    let sequential = run(1, 64);
    assert!(sequential.joint);
    for parallelism in [2, 8] {
        for batch_size in [1, 128] {
            let parallel = run(parallelism, batch_size);
            assert_outcomes_identical(
                &sequential,
                &parallel,
                &format!("JT parallelism={parallelism} batch={batch_size}"),
            );
        }
    }
}

#[test]
fn parallelism_one_matches_the_unconfigured_sequential_path() {
    // A session that never mentions the runtime (the historical API) and a
    // session pinned to parallelism(1) must agree bit-for-bit.
    let (data, labels) = workload();
    let mut plain_oracle = CachedOracle::from_labels(labels.clone(), 1_000);
    let plain = SupgSession::over(&data)
        .recall(0.9)
        .budget(1_000)
        .seed(42)
        .run(&mut plain_oracle)
        .unwrap();
    let mut pinned_oracle = CachedOracle::from_labels(labels, 1_000);
    let pinned = SupgSession::over(&data)
        .recall(0.9)
        .budget(1_000)
        .seed(42)
        .parallelism(1)
        .run(&mut pinned_oracle)
        .unwrap();
    assert_outcomes_identical(&plain, &pinned, "unconfigured vs parallelism(1)");
    assert_eq!(plain_oracle.calls_used(), pinned_oracle.calls_used());
}

#[test]
fn serial_fnmut_oracle_matches_shared_oracle() {
    // The FnMut fallback path (per-record labeling) and the batch-native
    // shared path must produce the same outcome for the same source.
    let (data, labels) = workload();
    let mut serial = CachedOracle::new(labels.len(), 1_000, {
        let labels = labels.clone();
        move |i| labels[i]
    });
    let mut shared = CachedOracle::from_labels(labels, 1_000)
        .with_runtime(RuntimeConfig::default().with_parallelism(8));
    let session = SupgSession::over(&data)
        .precision(0.9)
        .budget(1_000)
        .seed(3);
    let a = session.run(&mut serial).unwrap();
    let b = session.run(&mut shared).unwrap();
    assert_outcomes_identical(&a, &b, "serial vs shared source");
}
