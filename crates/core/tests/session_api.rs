//! The session builder's validation contract: every misconfiguration is a
//! typed [`SupgError`], never a panic, and no oracle budget is consumed by
//! a rejected plan.

use supg_core::{
    CachedOracle, Oracle as _, ScoredDataset, SelectorKind, SupgError, SupgSession, TargetKind,
};

fn dataset(n: usize) -> (ScoredDataset, Vec<bool>) {
    let scores: Vec<f64> = (0..n).map(|i| (i % 100) as f64 / 100.0).collect();
    let labels: Vec<bool> = scores.iter().map(|&s| s > 0.9).collect();
    (ScoredDataset::new(scores).unwrap(), labels)
}

#[test]
fn missing_target_is_typed() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    let err = SupgSession::over(&data)
        .budget(100)
        .run(&mut oracle)
        .unwrap_err();
    assert_eq!(err, SupgError::MissingTarget);
    assert_eq!(oracle.calls_used(), 0, "no budget spent on a rejected plan");
}

#[test]
fn missing_budget_on_single_target_is_typed() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    for session in [
        SupgSession::over(&data).recall(0.9),
        SupgSession::over(&data).precision(0.9),
    ] {
        let err = session.run(&mut oracle).unwrap_err();
        assert_eq!(err, SupgError::MissingBudget);
    }
    assert_eq!(oracle.calls_used(), 0);
}

#[test]
fn both_targets_without_joint_mode_is_typed() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    let err = SupgSession::over(&data)
        .recall(0.9)
        .precision(0.9)
        .budget(100)
        .run(&mut oracle)
        .unwrap_err();
    assert_eq!(err, SupgError::ConflictingTargets);
}

#[test]
fn joint_mode_still_requires_both_targets() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    for session in [
        SupgSession::over(&data).recall(0.9).joint(100),
        SupgSession::over(&data).precision(0.9).joint(100),
        SupgSession::over(&data).joint(100),
    ] {
        let err = session.run(&mut oracle).unwrap_err();
        assert_eq!(err, SupgError::MissingTarget);
    }
}

#[test]
fn joint_mode_rejects_an_extra_single_target_budget() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    let err = SupgSession::over(&data)
        .recall(0.9)
        .precision(0.9)
        .joint(100)
        .budget(500)
        .run(&mut oracle)
        .unwrap_err();
    assert!(matches!(err, SupgError::InvalidQuery(_)), "{err:?}");
}

#[test]
fn gamma_out_of_range_is_typed_not_a_panic() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    for gamma in [0.0, -0.5, 1.5, f64::NAN] {
        let err = SupgSession::over(&data)
            .recall(gamma)
            .budget(100)
            .run(&mut oracle)
            .unwrap_err();
        assert!(
            matches!(err, SupgError::InvalidQuery(_)),
            "gamma {gamma}: {err:?}"
        );
        // Joint mode validates both targets the same way.
        let err = SupgSession::over(&data)
            .recall(0.9)
            .precision(gamma)
            .joint(100)
            .run(&mut oracle)
            .unwrap_err();
        assert!(
            matches!(err, SupgError::InvalidQuery(_)),
            "gamma {gamma}: {err:?}"
        );
    }
}

#[test]
fn delta_out_of_range_is_typed_not_a_panic() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    for delta in [0.0, 1.0, -0.1, 2.0, f64::NAN] {
        let err = SupgSession::over(&data)
            .recall(0.9)
            .delta(delta)
            .budget(100)
            .run(&mut oracle)
            .unwrap_err();
        assert!(
            matches!(err, SupgError::InvalidQuery(_)),
            "delta {delta}: {err:?}"
        );
    }
}

#[test]
fn degenerate_budgets_are_typed() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    for budget in [0usize, 1] {
        let err = SupgSession::over(&data)
            .recall(0.9)
            .budget(budget)
            .run(&mut oracle)
            .unwrap_err();
        assert!(
            matches!(err, SupgError::InvalidQuery(_)),
            "budget {budget}: {err:?}"
        );
        let err = SupgSession::over(&data)
            .recall(0.9)
            .precision(0.9)
            .joint(budget)
            .run(&mut oracle)
            .unwrap_err();
        assert!(
            matches!(err, SupgError::InvalidQuery(_)),
            "stage {budget}: {err:?}"
        );
    }
}

#[test]
fn unsupported_selector_target_combination_is_typed() {
    let (data, labels) = dataset(1_000);
    let mut oracle = CachedOracle::from_labels(labels, 100);
    // Two-stage is a precision-only algorithm: no RT entry in the registry…
    let err = SupgSession::over(&data)
        .recall(0.9)
        .budget(100)
        .selector(SelectorKind::TwoStage)
        .run(&mut oracle)
        .unwrap_err();
    assert_eq!(
        err,
        SupgError::UnsupportedSelector {
            selector: "TwoStage",
            target: TargetKind::Recall
        }
    );
    // …and the JT pipeline's sampling stage is an RT stage.
    let err = SupgSession::over(&data)
        .recall(0.9)
        .precision(0.9)
        .joint(100)
        .selector(SelectorKind::TwoStage)
        .run(&mut oracle)
        .unwrap_err();
    assert_eq!(
        err,
        SupgError::UnsupportedSelector {
            selector: "TwoStage",
            target: TargetKind::Recall
        }
    );
    assert_eq!(oracle.calls_used(), 0);
}

#[test]
fn validate_previews_run_errors_without_executing() {
    let (data, _) = dataset(1_000);
    assert_eq!(
        SupgSession::over(&data).validate().unwrap_err(),
        SupgError::MissingTarget
    );
    assert!(SupgSession::over(&data)
        .recall(0.9)
        .budget(100)
        .validate()
        .is_ok());
    assert!(SupgSession::over(&data)
        .recall(0.9)
        .precision(0.9)
        .joint(100)
        .validate()
        .is_ok());
}

#[test]
fn bare_sessions_resolve_to_the_paper_family_defaults() {
    let (data, labels) = dataset(5_000);
    let mut oracle = CachedOracle::from_labels(labels.clone(), 500);
    let rt = SupgSession::over(&data)
        .recall(0.9)
        .budget(500)
        .run(&mut oracle)
        .unwrap();
    assert_eq!(rt.selector, "IS-CI-R");
    let mut oracle = CachedOracle::from_labels(labels.clone(), 500);
    let pt = SupgSession::over(&data)
        .precision(0.9)
        .budget(500)
        .run(&mut oracle)
        .unwrap();
    // The SUPG family default for precision is the two-stage IS-CI-P …
    assert_eq!(pt.selector, "IS-CI-P");
    // … while an explicit choice is honored verbatim.
    let mut oracle = CachedOracle::from_labels(labels, 500);
    let pt = SupgSession::over(&data)
        .precision(0.9)
        .budget(500)
        .selector(SelectorKind::ImportanceSampling)
        .run(&mut oracle)
        .unwrap();
    assert_eq!(pt.selector, "IS-CI-P-1stage");
}

#[test]
fn custom_oracles_run_single_target_without_session_oracle() {
    use supg_core::{Oracle, SupgError};

    /// A plain Oracle implementation, as a downstream labeling service
    /// would write it — no `SessionOracle`/`set_budget` support.
    struct CountingOracle {
        labels: Vec<bool>,
        used: usize,
        budget: usize,
    }
    impl Oracle for CountingOracle {
        fn label(&mut self, index: usize) -> Result<bool, SupgError> {
            if self.used >= self.budget {
                return Err(SupgError::BudgetExhausted {
                    budget: self.budget,
                });
            }
            self.used += 1;
            Ok(self.labels[index])
        }
        fn calls_used(&self) -> usize {
            self.used
        }
        fn budget(&self) -> usize {
            self.budget
        }
    }

    let (data, labels) = dataset(5_000);
    let mut oracle = CountingOracle {
        labels,
        used: 0,
        budget: 500,
    };
    let outcome = SupgSession::over(&data)
        .recall(0.9)
        .budget(500)
        .run_single_target(&mut oracle)
        .unwrap();
    assert_eq!(outcome.selector, "IS-CI-R");
    assert!(oracle.used <= 500);

    // JT mode needs a re-budgetable oracle and says so.
    let err = SupgSession::over(&data)
        .recall(0.8)
        .precision(0.9)
        .joint(100)
        .run_single_target(&mut oracle)
        .unwrap_err();
    assert!(matches!(err, SupgError::InvalidQuery(_)), "{err:?}");
}

#[test]
fn jt_queries_restore_the_oracle_budget() {
    let (data, labels) = dataset(5_000);
    let mut oracle = CachedOracle::from_labels(labels, 150);
    SupgSession::over(&data)
        .recall(0.8)
        .precision(0.9)
        .joint(100)
        .run(&mut oracle)
        .unwrap();
    // The filter stage's usize::MAX lift must not leak to later queries.
    assert_eq!(oracle.budget(), 150, "budget not restored after JT");
}

#[test]
fn error_messages_name_the_fix() {
    // The typed errors double as migration hints; keep them actionable.
    assert!(SupgError::ConflictingTargets.to_string().contains("joint"));
    assert!(SupgError::MissingBudget.to_string().contains("budget"));
    assert!(SupgError::UnsupportedSelector {
        selector: "TwoStage",
        target: TargetKind::Recall
    }
    .to_string()
    .contains("RECALL"));
}
