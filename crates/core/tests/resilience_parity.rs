//! Faulted ≡ fault-free parity: a query whose oracle suffers injected
//! transient failures, retried through [`ResilientOracle`], must return
//! a [`QueryOutcome`] bit-identical to the fault-free run — same answer
//! set, same τ bits, same oracle/stage/filter call counts — differing
//! only in the retry-accounting fields (`oracle_retries`,
//! `oracle_failures`, `retry_backoff`).
//!
//! The contract holds structurally: injected faults fire *before* the
//! inner oracle is consulted, so only the final successful label of each
//! distinct record consumes budget or touches the cache, and the label
//! itself stays a pure function of the index. Pinned across all three
//! target kinds (RT/PT/JT), parallelism ∈ {1, 4, 8}, and flat vs
//! segmented corpora.

use supg_core::{
    CachedOracle, FaultPlan, FaultyOracle, QueryOutcome, ResilientOracle, RetryPolicy,
    ScoredDataset, SegmentedDataset, SupgSession,
};
use supg_datasets::{Preset, PresetKind};

const FAULT_SEED: u64 = 0xBAD5_EED5;
const TRANSIENT_RATE: f64 = 0.05;

fn workload() -> (Vec<f64>, Vec<bool>) {
    Preset::new(PresetKind::NightStreet)
        .generate_sized(23, 20_000)
        .into_parts()
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Recall,
    Precision,
    Joint,
}

impl Mode {
    /// The oracle-side budget: RT/PT meter at the oracle, JT's stage
    /// budgets are driven through `set_budget` by the session.
    fn oracle_budget(self) -> usize {
        match self {
            Mode::Recall | Mode::Precision => 1_000,
            Mode::Joint => 0,
        }
    }
}

fn run_mode(
    session: SupgSession<'_>,
    mode: Mode,
    oracle: &mut dyn supg_core::SessionOracle,
) -> QueryOutcome {
    let session = match mode {
        Mode::Recall => session.recall(0.9).budget(1_000),
        Mode::Precision => session.precision(0.9).budget(1_000),
        Mode::Joint => session.recall(0.8).precision(0.9).joint(800),
    };
    session.seed(0xF00D).run(oracle).unwrap()
}

fn assert_answers_identical(clean: &QueryOutcome, faulted: &QueryOutcome, context: &str) {
    assert_eq!(
        clean.result.indices(),
        faulted.result.indices(),
        "{context}: result set"
    );
    assert_eq!(
        clean.tau.to_bits(),
        faulted.tau.to_bits(),
        "{context}: tau bits"
    );
    assert_eq!(clean.selector, faulted.selector, "{context}: selector");
    assert_eq!(
        clean.oracle_calls, faulted.oracle_calls,
        "{context}: oracle_calls"
    );
    assert_eq!(
        clean.stage_calls, faulted.stage_calls,
        "{context}: stage_calls"
    );
    assert_eq!(
        clean.filter_calls, faulted.filter_calls,
        "{context}: filter_calls"
    );
    assert_eq!(
        clean.sample_draws, faulted.sample_draws,
        "{context}: sample_draws"
    );
    assert_eq!(
        clean.candidates, faulted.candidates,
        "{context}: candidates"
    );
    assert_eq!(clean.joint, faulted.joint, "{context}: joint");
}

/// The headline parity matrix: every target kind, every parallelism,
/// flat and segmented layouts.
#[test]
fn retried_faulty_runs_match_fault_free_bit_for_bit() {
    let (scores, labels) = workload();
    let flat = ScoredDataset::new(scores.clone()).unwrap();
    let seg = SegmentedDataset::new(scores, 1 << 12).unwrap();

    for mode in [Mode::Recall, Mode::Precision, Mode::Joint] {
        for parallelism in [1usize, 4, 8] {
            for segmented in [false, true] {
                let session = || {
                    if segmented {
                        SupgSession::over_segmented(&seg).parallelism(parallelism)
                    } else {
                        SupgSession::over(&flat).parallelism(parallelism)
                    }
                };
                let context = format!("{mode:?} p={parallelism} segmented={segmented}");

                let mut clean_oracle =
                    CachedOracle::from_labels(labels.clone(), mode.oracle_budget());
                let clean = run_mode(session(), mode, &mut clean_oracle);
                assert_eq!(clean.oracle_retries, 0, "{context}: clean run retried");
                assert_eq!(
                    clean.retry_backoff.as_nanos(),
                    0,
                    "{context}: clean backoff"
                );

                let plan = FaultPlan::new(FAULT_SEED).with_transient_rate(TRANSIENT_RATE);
                let faulty = FaultyOracle::new(
                    CachedOracle::from_labels(labels.clone(), mode.oracle_budget()),
                    plan,
                );
                let mut resilient = ResilientOracle::new(faulty, RetryPolicy::default());
                let faulted = run_mode(session(), mode, &mut resilient);

                assert_answers_identical(&clean, &faulted, &context);
                // The run really exercised the retry path: the fault plan
                // at 5% transients over hundreds of labels cannot stay
                // silent, and each retry accrued (virtual) backoff.
                assert!(
                    faulted.oracle_retries > 0,
                    "{context}: no faults fired — the parity check is vacuous"
                );
                assert_eq!(faulted.oracle_failures, 0, "{context}: unexpected failures");
                assert!(
                    faulted.retry_backoff.as_nanos() > 0,
                    "{context}: retries without backoff accounting"
                );
            }
        }
    }
}

/// The injected fault pattern itself is independent of parallelism: the
/// same records fault, the same number of retries fire, whatever the
/// worker count.
#[test]
fn retry_counts_are_deterministic_across_parallelism() {
    let (scores, labels) = workload();
    let data = ScoredDataset::new(scores).unwrap();
    let run = |parallelism: usize| {
        let plan = FaultPlan::new(FAULT_SEED).with_transient_rate(TRANSIENT_RATE);
        let faulty = FaultyOracle::new(
            CachedOracle::from_labels(labels.clone(), Mode::Recall.oracle_budget()),
            plan,
        );
        let mut resilient = ResilientOracle::new(faulty, RetryPolicy::default());
        run_mode(
            SupgSession::over(&data).parallelism(parallelism),
            Mode::Recall,
            &mut resilient,
        )
    };
    let sequential = run(1);
    assert!(sequential.oracle_retries > 0);
    for parallelism in [4usize, 8] {
        let parallel = run(parallelism);
        assert_eq!(
            sequential.oracle_retries, parallel.oracle_retries,
            "retry count drifted at parallelism {parallelism}"
        );
        assert_eq!(
            sequential.retry_backoff, parallel.retry_backoff,
            "backoff accounting drifted at parallelism {parallelism}"
        );
    }
}

/// Exhausted retries surface as a permanent failure, and the failed
/// query must not have billed the budget for the failing record.
#[test]
fn permanent_faults_fail_the_query_with_a_typed_error() {
    let (scores, labels) = workload();
    let data = ScoredDataset::new(scores).unwrap();
    let plan = FaultPlan::new(FAULT_SEED).with_permanent_rate(0.02);
    let faulty = FaultyOracle::new(CachedOracle::from_labels(labels, 1_000), plan);
    let mut resilient = ResilientOracle::new(faulty, RetryPolicy::default());
    let err = SupgSession::over(&data)
        .recall(0.9)
        .budget(1_000)
        .seed(0xF00D)
        .run(&mut resilient)
        .unwrap_err();
    assert!(
        matches!(err, supg_core::SupgError::OracleFailed { .. }),
        "expected OracleFailed, got {err:?}"
    );
}
