//! Parity and determinism contracts of the rank-index serving path:
//!
//! 1. **Materialization parity.** `RankIndex` set materialization (binary
//!    search + rank-prefix slice) must be bit-identical to the retained
//!    linear-scan reference (`rank::materialize_linear`) across random
//!    datasets, heavy score ties, and thresholds falling exactly on,
//!    between, and outside the score boundaries.
//! 2. **JT rank-range parity.** The joint pipeline's rank-range candidate
//!    enumeration and exhaustive filter must reproduce the reference
//!    computed by a linear predicate pass over all scores.
//! 3. **Build determinism.** The parallel chunked-sort + pairwise-merge
//!    build must be bit-identical to the serial build at every
//!    parallelism / run count — the canonical comparator is a strict
//!    total order, so the sorted permutation is unique and no
//!    floating-point accumulation exists anywhere in the build.

use proptest::prelude::*;
use supg_core::rank::{materialize_linear, RankIndex};
use supg_core::{CachedOracle, RuntimeConfig, ScoredDataset, SupgSession};

/// Quantized scores (÷ granularity) so every dataset carries heavy ties.
fn tied_dataset() -> impl Strategy<Value = Vec<f64>> {
    (2u32..40, prop::collection::vec(0u32..4000, 1..400)).prop_map(|(gran, raw)| {
        raw.into_iter()
            .map(|q| (q % (gran + 1)) as f64 / gran as f64)
            .collect()
    })
}

/// Thresholds that land on, between, and outside the score boundaries.
fn taus_for(scores: &[f64]) -> Vec<f64> {
    let mut taus = vec![-1.0, 0.0, 1.0, 1.5, f64::INFINITY];
    for &s in scores.iter().take(8) {
        taus.push(s); // exactly at a boundary
        taus.push(s + 1e-9); // just above
        taus.push((s - 1e-9).max(0.0)); // just below
    }
    taus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rank_materialization_is_bit_identical_to_linear_scan(scores in tied_dataset()) {
        let index = RankIndex::build_serial(&scores);
        for tau in taus_for(&scores) {
            let rank = index.materialize(tau);
            let linear = materialize_linear(&scores, tau);
            prop_assert_eq!(&rank, &linear, "tau={}", tau);
            prop_assert_eq!(index.cut_for(tau), linear.len());
            // The borrowed prefix slice agrees with the owned copy.
            let slice: Vec<usize> = index.select(tau).iter().map(|&i| i as usize).collect();
            prop_assert_eq!(&rank, &slice);
        }
    }

    #[test]
    fn union_materialization_matches_the_linear_reference(
        scores in tied_dataset(),
        extra_picks in prop::collection::vec(0usize..10_000, 0..20),
    ) {
        let index = RankIndex::build_serial(&scores);
        // Extras as a sorted, deduplicated index set (the labeled-positive
        // shape the session feeds in).
        let mut extras: Vec<usize> = extra_picks.iter().map(|p| p % scores.len()).collect();
        extras.sort_unstable();
        extras.dedup();
        for tau in taus_for(&scores) {
            let fused = index.materialize_union(tau, &extras);
            // Reference: linear threshold set, then the extras the linear
            // set does not already contain.
            let mut reference = materialize_linear(&scores, tau);
            let below: Vec<usize> = extras
                .iter()
                .copied()
                .filter(|&i| scores[i] < tau)
                .collect();
            reference.extend_from_slice(&below);
            prop_assert_eq!(&fused, &reference, "tau={}", tau);
            // Duplicate-free by construction.
            let mut seen = fused.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), fused.len());
        }
    }

    #[test]
    fn parallel_and_chunked_builds_are_bit_identical(scores in tied_dataset()) {
        let serial = RankIndex::build_serial(&scores);
        for parallelism in [1usize, 4, 8] {
            let rt = RuntimeConfig::default().with_parallelism(parallelism);
            prop_assert_eq!(&RankIndex::build(&scores, &rt), &serial);
        }
        for runs in [2usize, 3, 8] {
            prop_assert_eq!(&RankIndex::build_chunked(&scores, runs), &serial);
        }
    }
}

/// The parallel sort/merge machinery at scale (above the serial-fallback
/// threshold), pinned at parallelism ∈ {1, 4, 8} and across run counts,
/// on a tie-heavy dataset.
#[test]
fn large_parallel_build_is_deterministic() {
    let scores: Vec<f64> = (0..120_000)
        .map(|i| ((i * 7919) % 1000) as f64 / 1000.0)
        .collect();
    let serial = RankIndex::build_serial(&scores);
    for parallelism in [1usize, 4, 8] {
        let rt = RuntimeConfig::default().with_parallelism(parallelism);
        assert_eq!(
            RankIndex::build(&scores, &rt),
            serial,
            "parallelism={parallelism}"
        );
    }
    for runs in [2usize, 5, 8, 16] {
        assert_eq!(
            RankIndex::build_chunked(&scores, runs),
            serial,
            "runs={runs}"
        );
    }
    // Order really is (score desc, index asc): explicit spot-check of a
    // tie class.
    let order = serial.order();
    for w in order.windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        assert!(
            scores[a] > scores[b] || (scores[a] == scores[b] && a < b),
            "canonical order violated at {a},{b}"
        );
    }
}

/// An RT query's result must be exactly the linear-scan reconstruction:
/// the linear-scan threshold set (in canonical order) followed by the
/// below-threshold labeled positives — bit-identical indices, whether the
/// index was built lazily (serial) or eagerly on the pool.
#[test]
fn rt_query_result_matches_linear_scan_reconstruction() {
    let scores: Vec<f64> = (0..30_000)
        .map(|i| ((i * 523) % 701) as f64 / 701.0)
        .collect();
    let labels: Vec<bool> = scores.iter().map(|&s| s > 0.75).collect();

    let run = |data: &ScoredDataset| {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 800);
        SupgSession::over(data)
            .recall(0.9)
            .budget(800)
            .seed(91)
            .run(&mut oracle)
            .unwrap()
    };

    let lazy_data = ScoredDataset::new(scores.clone()).unwrap();
    let outcome = run(&lazy_data);

    // Reconstruct from the linear reference: R2 in canonical order, then
    // the oracle-positive draws with score < τ, ascending.
    let mut expected = materialize_linear(&scores, outcome.tau);
    let in_r2: std::collections::HashSet<usize> = expected.iter().copied().collect();
    let mut extras: Vec<usize> = (0..scores.len())
        .filter(|&i| labels[i] && scores[i] < outcome.tau)
        .filter(|i| !in_r2.contains(i))
        .collect();
    // Only sampled positives are in R1; intersect with the result set.
    extras.retain(|&i| outcome.result.contains(i));
    expected.extend_from_slice(&extras);
    assert_eq!(outcome.result.indices(), expected.as_slice());

    // Pool-built index (8 workers) reproduces the outcome bit-for-bit.
    let pooled_data = ScoredDataset::new(scores).unwrap();
    pooled_data.prepare_rank_index(&RuntimeConfig::default().with_parallelism(8));
    let pooled = run(&pooled_data);
    assert_eq!(pooled.result.indices(), outcome.result.indices());
    assert_eq!(pooled.tau.to_bits(), outcome.tau.to_bits());
}

/// The JT pipeline's rank-range filter must keep exactly the
/// oracle-positive candidates, in candidate (rank) order — the same set a
/// linear predicate pass over every score would produce.
#[test]
fn jt_filter_matches_linear_scan_reference() {
    let scores: Vec<f64> = (0..20_000)
        .map(|i| ((i * 997) % 613) as f64 / 613.0)
        .collect();
    let labels: Vec<bool> = scores.iter().map(|&s| s > 0.6).collect();
    let data = ScoredDataset::new(scores.clone()).unwrap();
    let mut oracle = CachedOracle::from_labels(labels.clone(), 0);
    let outcome = SupgSession::over(&data)
        .recall(0.85)
        .precision(0.9)
        .joint(600)
        .seed(17)
        .run(&mut oracle)
        .unwrap();
    assert!(outcome.joint);

    // Reference: every result record is oracle-positive, and every
    // τ-selected positive (linear scan) is in the result.
    for &i in outcome.result.indices() {
        assert!(labels[i], "JT kept an oracle-negative record {i}");
    }
    let reference: Vec<usize> = materialize_linear(&scores, outcome.tau)
        .into_iter()
        .filter(|&i| labels[i])
        .collect();
    // The τ-selected positives appear in the result in the same rank
    // order (the result may additionally hold below-τ sampled positives).
    let from_range: Vec<usize> = outcome
        .result
        .indices()
        .iter()
        .copied()
        .filter(|&i| scores[i] >= outcome.tau)
        .collect();
    assert_eq!(from_range, reference);
}
