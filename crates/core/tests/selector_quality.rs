//! Focused behavioural tests for selector quality relationships that the
//! paper asserts (Figures 7, 8 and 12). These effects are regime-dependent
//! — they hold when the labeled sample contains a healthy number of
//! positives — so each test runs in (a scaled version of) the paper's
//! configuration rather than an arbitrary one.

use supg_core::metrics::evaluate;
use supg_core::selectors::SelectorConfig;
use supg_core::{ApproxQuery, CachedOracle, ScoredDataset, SelectorKind, SupgSession};
use supg_datasets::{BetaDataset, MixtureDataset};
use supg_stats::dist::Beta;

fn mean_quality(
    data: &ScoredDataset,
    labels: &[bool],
    kind: SelectorKind,
    cfg: SelectorConfig,
    query: &ApproxQuery,
    trials: u64,
    recall_metric: bool,
) -> f64 {
    let mut acc = 0.0;
    for t in 0..trials {
        let truth = labels.to_vec();
        let mut oracle = CachedOracle::new(truth.len(), query.budget(), move |i| truth[i]);
        let outcome = SupgSession::over(data)
            .query(query)
            .selector(kind)
            .selector_config(cfg)
            .seed(0xD00D + t)
            .run(&mut oracle)
            .unwrap();
        let pr = evaluate(outcome.result.indices(), labels);
        acc += if recall_metric {
            pr.recall
        } else {
            pr.precision
        };
    }
    acc / trials as f64
}

#[test]
fn two_stage_beats_uniform_on_pt_recall() {
    // Figure 7's core claim: rare positives, calibrated proxy.
    let (scores, labels) = BetaDataset::new(0.02, 2.0, 150_000)
        .generate(51)
        .into_parts();
    let data = ScoredDataset::new(scores).unwrap();
    let query = ApproxQuery::precision_target(0.9, 0.05, 1_500);
    let cfg = SelectorConfig::default();
    let two = mean_quality(&data, &labels, SelectorKind::TwoStage, cfg, &query, 8, true);
    let uni = mean_quality(&data, &labels, SelectorKind::Uniform, cfg, &query, 8, true);
    assert!(two > uni, "two-stage recall {two} vs uniform {uni}");
}

#[test]
fn sqrt_weights_beat_the_endpoints_in_the_paper_regime() {
    // Figure 12's exact configuration: Beta(0.01, 2) at 10⁶ records with a
    // 10⁴ budget. The sqrt optimum needs this regime — with very few
    // sampled positives the comparison inverts (small samples get
    // lucky-but-fragile high thresholds).
    let (scores, labels) = BetaDataset::new(0.01, 2.0, 1_000_000)
        .generate(52)
        .into_parts();
    let data = ScoredDataset::new(scores).unwrap();
    let query = ApproxQuery::recall_target(0.9, 0.05, 10_000);
    let quality = |p: f64| {
        let cfg = SelectorConfig::default().with_exponent(p);
        mean_quality(
            &data,
            &labels,
            SelectorKind::ImportanceSampling,
            cfg,
            &query,
            10,
            false,
        )
    };
    let (q0, q_half, q1) = (quality(0.0), quality(0.5), quality(1.0));
    assert!(q_half > q0, "sqrt {q_half} vs exponent-0 {q0}");
    assert!(q_half > 0.9 * q1, "sqrt {q_half} vs proportional {q1}");
}

#[test]
fn larger_budgets_improve_uniform_rt_quality() {
    // In the uniform-sampling regime with a moderate positive rate (the
    // night-street configuration), more labels → tighter bounds → higher
    // certified thresholds → higher precision. The comparison starts at a
    // budget large enough for the CI to bind: tiny samples occasionally
    // draw lucky-but-fragile high thresholds (the same confound the
    // exponent test notes), which masks the monotone regime.
    let data_gen = MixtureDataset::new(150_000, 0.04, Beta::new(8.0, 2.2), Beta::new(0.4, 4.5));
    let (scores, labels) = data_gen.generate(53).into_parts();
    let data = ScoredDataset::new(scores).unwrap();
    let cfg = SelectorConfig::default();
    let small = ApproxQuery::recall_target(0.9, 0.05, 2_000);
    let large = ApproxQuery::recall_target(0.9, 0.05, 16_000);
    let q_small = mean_quality(
        &data,
        &labels,
        SelectorKind::Uniform,
        cfg,
        &small,
        12,
        false,
    );
    let q_large = mean_quality(
        &data,
        &labels,
        SelectorKind::Uniform,
        cfg,
        &large,
        12,
        false,
    );
    assert!(
        q_large > q_small,
        "budget 16000 precision {q_large} vs budget 2000 {q_small}"
    );
}

#[test]
fn stricter_pt_targets_shrink_results_on_average() {
    let (scores, labels) = BetaDataset::new(0.02, 2.0, 150_000)
        .generate(54)
        .into_parts();
    let data = ScoredDataset::new(scores).unwrap();
    let cfg = SelectorConfig::default();
    // Compare the certified threshold sets |D(τ)| (the labeled-positive
    // union R1 is target-independent and would mask the effect).
    let mean_certified = |gamma: f64| -> f64 {
        let query = ApproxQuery::precision_target(gamma, 0.05, 1_500);
        let mut acc = 0.0;
        let trials = 6;
        for t in 0..trials {
            let truth = labels.clone();
            let mut oracle = CachedOracle::new(truth.len(), 1_500, move |i| truth[i]);
            let outcome = SupgSession::over(&data)
                .query(&query)
                .selector(SelectorKind::TwoStage)
                .selector_config(cfg)
                .seed(0xCAFE + t)
                .run(&mut oracle)
                .unwrap();
            acc += data.count_at_least(outcome.tau) as f64;
        }
        acc / trials as f64
    };
    let loose = mean_certified(0.75);
    let strict = mean_certified(0.99);
    assert!(
        loose >= strict,
        "certified set at target 0.75 ({loose}) < at 0.99 ({strict})"
    );
}
