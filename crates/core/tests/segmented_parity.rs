//! Flat ≡ segmented corpus parity: a session over a [`SegmentedDataset`]
//! must produce a `QueryOutcome` **bit-identical** to a session over the
//! flat [`ScoredDataset`] of the concatenated scores — same `τ` bits,
//! same result order, same oracle-call accounting — at every segment
//! size, every parallelism level, and for RT, PT and JT queries alike
//! (under the default `Alias` sampler strategy, whose draws consume the
//! seeded RNG stream identically across layouts). The segment layout is
//! an artifact-residency decision; it must never be observable in
//! results.

use proptest::prelude::*;
use supg_core::{
    CachedOracle, PreparedDataset, QueryOutcome, RuntimeConfig, ScoredDataset, SegmentedDataset,
    SelectorKind, SupgSession, TargetKind,
};

/// Beta-distributed proxy scores with Bernoulli(A) labels — the rare-
/// positive regime the paper targets.
fn rare(n: usize, seed: u64) -> (Vec<f64>, Vec<bool>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use supg_stats::dist::{Bernoulli, Beta};
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Beta::new(0.08, 2.0);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a = dist.sample(&mut rng);
        scores.push(a);
        labels.push(Bernoulli::new(a).sample(&mut rng));
    }
    (scores, labels)
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.tau.to_bits(), b.tau.to_bits(), "{context}: tau");
    assert_eq!(
        a.result.indices(),
        b.result.indices(),
        "{context}: result set (order-sensitive)"
    );
    assert_eq!(a.oracle_calls, b.oracle_calls, "{context}: oracle calls");
    assert_eq!(a.stage_calls, b.stage_calls, "{context}: stage calls");
    assert_eq!(a.filter_calls, b.filter_calls, "{context}: filter calls");
    assert_eq!(a.sample_draws, b.sample_draws, "{context}: draws");
    assert_eq!(
        a.sample_positives, b.sample_positives,
        "{context}: positives"
    );
    assert_eq!(a.candidates, b.candidates, "{context}: candidates");
    assert_eq!(a.selector, b.selector, "{context}: selector");
}

#[derive(Clone, Copy, Debug)]
enum Mode {
    Recall,
    Precision,
    Joint,
}

fn run_mode(session: SupgSession<'_>, mode: Mode, labels: &[bool], seed: u64) -> QueryOutcome {
    match mode {
        Mode::Recall => {
            let mut oracle = CachedOracle::from_labels(labels.to_vec(), 400);
            session
                .recall(0.9)
                .budget(400)
                .seed(seed)
                .run(&mut oracle)
                .unwrap()
        }
        Mode::Precision => {
            let mut oracle = CachedOracle::from_labels(labels.to_vec(), 400);
            session
                .precision(0.8)
                .budget(400)
                .seed(seed)
                .run(&mut oracle)
                .unwrap()
        }
        Mode::Joint => {
            let mut oracle = CachedOracle::from_labels(labels.to_vec(), 0);
            session
                .recall(0.8)
                .precision(0.9)
                .joint(300)
                .seed(seed)
                .run(&mut oracle)
                .unwrap()
        }
    }
}

#[test]
fn segmented_matches_flat_across_layouts_targets_and_parallelism() {
    let n = 3_000;
    let (scores, labels) = rare(n, 99);
    let data = ScoredDataset::new(scores.clone()).unwrap();
    for segment_size in [1usize, 64, n / 3, n] {
        let seg = SegmentedDataset::new(scores.clone(), segment_size).unwrap();
        for parallelism in [1usize, 4, 8] {
            for mode in [Mode::Recall, Mode::Precision, Mode::Joint] {
                let flat = run_mode(
                    SupgSession::over(&data).parallelism(parallelism),
                    mode,
                    &labels,
                    4242,
                );
                let segd = run_mode(
                    SupgSession::over_segmented(&seg).parallelism(parallelism),
                    mode,
                    &labels,
                    4242,
                );
                assert_outcomes_identical(
                    &flat,
                    &segd,
                    &format!("{mode:?} seg={segment_size} p={parallelism}"),
                );
            }
        }
    }
}

#[test]
fn segmented_matches_flat_for_every_registry_selector() {
    let n = 2_000;
    let (scores, labels) = rare(n, 101);
    let data = ScoredDataset::new(scores.clone()).unwrap();
    let seg = SegmentedDataset::new(scores, 256).unwrap();
    for (kind, target) in SelectorKind::registry() {
        let run = |session: SupgSession<'_>| -> QueryOutcome {
            let session = match target {
                TargetKind::Recall => session.recall(0.9),
                TargetKind::Precision => session.precision(0.85),
            };
            let mut oracle = CachedOracle::from_labels(labels.clone(), 500);
            session
                .budget(500)
                .selector(kind)
                .seed(7)
                .run(&mut oracle)
                .unwrap()
        };
        let flat = run(SupgSession::over(&data));
        let segd = run(SupgSession::over_segmented(&seg));
        let name = kind.paper_name(target).unwrap();
        assert_outcomes_identical(&flat, &segd, name);
    }
}

#[test]
fn prepared_segmented_matches_cold_flat() {
    // The full serving path: per-segment rank indexes and sampling
    // artifacts built eagerly on an 8-wide pool, served from the
    // prepared cache — against a from-scratch flat cold session.
    let n = 6_000;
    let (scores, labels) = rare(n, 103);
    let data = ScoredDataset::new(scores.clone()).unwrap();
    let prepared = PreparedDataset::from_segmented(SegmentedDataset::new(scores, 1 << 10).unwrap())
        .with_runtime(RuntimeConfig::default().with_parallelism(8));
    prepared.prepare();
    prepared.warm(&supg_core::selectors::SelectorConfig::default());
    let run = |session: SupgSession<'_>| {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 600);
        session
            .recall(0.9)
            .budget(600)
            .seed(4711)
            .run(&mut oracle)
            .unwrap()
    };
    let cold = run(SupgSession::over(&data));
    let warm = run(SupgSession::over_prepared(&prepared));
    assert_outcomes_identical(&cold, &warm, "prepared segmented");
    // Repeat queries hit the cache, never rebuild.
    let again = run(SupgSession::over_prepared(&prepared));
    assert_outcomes_identical(&cold, &again, "prepared segmented (warm)");
    assert_eq!(prepared.cached_recipes(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Randomized layouts and seeds: any segment size from one record to
    // the whole corpus, any seed, RT and PT — flat and segmented
    // outcomes stay bit-identical.
    #[test]
    fn segmented_parity_holds_for_random_layouts(
        n in 200usize..1200,
        segment_size in 1usize..1400,
        seed in 0u64..10_000,
        recall_target in any::<bool>(),
    ) {
        let (scores, labels) = rare(n, seed ^ 0xDEAD_BEEF);
        let data = ScoredDataset::new(scores.clone()).unwrap();
        let seg = SegmentedDataset::new(scores, segment_size.min(n)).unwrap();
        let mode = if recall_target { Mode::Recall } else { Mode::Precision };
        let flat = run_mode(SupgSession::over(&data), mode, &labels, seed);
        let segd = run_mode(SupgSession::over_segmented(&seg), mode, &labels, seed);
        assert_outcomes_identical(&flat, &segd, &format!("{mode:?} n={n} seg={segment_size} seed={seed}"));
    }
}
