//! Parity suite: the sweep-based threshold estimators must return
//! **bit-identical** τ to the retained naive quadratic references over
//! random samples, weights, strides and every CI method.
//!
//! Both paths walk the same canonical sample order and feed the same
//! moment sketches to the same bound kernel, so any divergence is a bug in
//! the prefix bookkeeping — this suite is the contract that keeps the O(1)
//! window lookups honest.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use supg_core::selectors::reference::{precision_threshold_naive, recall_threshold_naive};
use supg_core::selectors::{precision_threshold, recall_threshold, SelectorConfig};
use supg_core::OracleSample;
use supg_stats::CiMethod;

/// Every CI method, including the rng-consuming bootstrap (small resample
/// count: parity also covers the rng stream, since both paths must draw
/// identically).
fn all_methods() -> Vec<CiMethod> {
    vec![
        CiMethod::PaperNormal,
        CiMethod::ZNormal,
        CiMethod::Hoeffding,
        CiMethod::ClopperPearson,
        CiMethod::Wilson,
        CiMethod::Bootstrap { resamples: 20 },
    ]
}

/// Strategy: a random labeled sample. Scores are quantized to a small grid
/// so candidate thresholds collide often (the dedup path), and weights mix
/// unit (uniform-sampling) and non-unit (importance) factors so both the
/// exact-binomial fast path and its fallback are exercised.
fn sample_strategy() -> impl Strategy<Value = OracleSample> {
    (
        prop::collection::vec((0u32..50, any::<bool>(), 1u32..8), 1..400),
        any::<bool>(),
    )
        .prop_map(|(rows, unit_weights)| {
            let mut indices = Vec::new();
            let mut scores = Vec::new();
            let mut labels = Vec::new();
            let mut reweights = Vec::new();
            for (i, (q, label, w)) in rows.into_iter().enumerate() {
                indices.push(i);
                scores.push(q as f64 / 49.0);
                labels.push(label);
                reweights.push(if unit_weights { 1.0 } else { w as f64 / 2.0 });
            }
            OracleSample::from_parts(indices, scores, labels, reweights)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn precision_sweep_is_bit_identical_to_naive(
        sample in sample_strategy(),
        step in 1usize..40,
        gamma in 0.05f64..0.99,
        delta in prop_oneof![Just(0.01f64), Just(0.05), Just(0.2)],
        seed in 0u64..10_000,
    ) {
        for method in all_methods() {
            let cfg = SelectorConfig::default()
                .with_ci(method)
                .with_precision_step(step);
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let sweep = precision_threshold(&sample, gamma, delta, &cfg, &mut r1);
            let naive = precision_threshold_naive(&sample, gamma, delta, &cfg, &mut r2);
            prop_assert_eq!(
                sweep.to_bits(),
                naive.to_bits(),
                "{:?}: sweep {} vs naive {}",
                method,
                sweep,
                naive
            );
        }
    }

    #[test]
    fn recall_sweep_is_bit_identical_to_naive(
        sample in sample_strategy(),
        gamma in 0.05f64..1.0,
        delta in prop_oneof![Just(0.01f64), Just(0.05), Just(0.2)],
        seed in 0u64..10_000,
    ) {
        for method in all_methods() {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let sweep = recall_threshold(&sample, gamma, delta, method, &mut r1);
            let naive = recall_threshold_naive(&sample, gamma, delta, method, &mut r2);
            prop_assert_eq!(
                sweep.to_bits(),
                naive.to_bits(),
                "{:?}: sweep {} vs naive {}",
                method,
                sweep,
                naive
            );
        }
    }

    #[test]
    fn sweep_accessors_match_materialized_forms(
        sample in sample_strategy(),
        tau_grid in 0u32..55,
    ) {
        // Spot-check the canonical-index accessors against their
        // materializing counterparts at arbitrary (including off-sample)
        // thresholds.
        let tau = tau_grid as f64 / 49.0;
        let cut = sample.cut_for(tau);
        let (ys, xs) = sample.precision_pairs(tau);
        prop_assert_eq!(ys.len(), cut);
        let sketch = sample.window_sketch(cut);
        let direct = supg_stats::PairSketch::from_pairs(
            ys.iter().copied().zip(xs.iter().copied()),
        );
        prop_assert_eq!(sketch, direct);

        let (z1, z2) = sample.recall_split(tau);
        let (sk1, sk2) = sample.z_sketches(cut);
        prop_assert_eq!(sk1, supg_stats::SampleSketch::from_values(z1.iter().copied()));
        prop_assert_eq!(sk2, supg_stats::SampleSketch::from_values(z2.iter().copied()));
    }
}
