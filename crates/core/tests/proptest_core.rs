//! Property-based tests for the SUPG core invariants.

use proptest::prelude::*;
use supg_core::selectors::SelectorConfig;
use supg_core::{
    ApproxQuery, CachedOracle, Oracle, OracleSample, ScoredDataset, SelectorKind, SupgSession,
    TargetKind,
};

/// Strategy: a small dataset of (score, label) pairs with at least one
/// record.
fn dataset_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    prop::collection::vec((0.0f64..=1.0, any::<bool>()), 10..300)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

/// Every registry entry as `(kind, target)` pairs.
fn all_registry_pairs() -> Vec<(SelectorKind, TargetKind)> {
    SelectorKind::registry().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn no_selector_ever_exceeds_the_budget(
        (scores, labels) in dataset_strategy(),
        budget in 4usize..60,
        seed in 0u64..1000,
    ) {
        let data = ScoredDataset::new(scores).unwrap();
        for (kind, target) in all_registry_pairs() {
            let query = ApproxQuery::new(target, 0.8, 0.1, budget).unwrap();
            let owned = labels.clone();
            let mut oracle = CachedOracle::new(owned.len(), budget, move |i| owned[i]);
            let result = SupgSession::over(&data)
                .query(&query)
                .selector(kind)
                .selector_config(SelectorConfig::default().with_precision_step(5))
                .seed(seed)
                .run(&mut oracle);
            let name = kind.paper_name(target).unwrap();
            prop_assert!(result.is_ok(), "{name}: {:?}", result.err());
            prop_assert!(oracle.calls_used() <= budget, "{name} overspent");
            prop_assert_eq!(result.unwrap().selector, name);
        }
    }

    #[test]
    fn executor_result_contains_all_sampled_positives(
        (scores, labels) in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let data = ScoredDataset::new(scores).unwrap();
        let budget = 20;
        let query = ApproxQuery::recall_target(0.9, 0.1, budget);
        let owned = labels.clone();
        let mut oracle = CachedOracle::new(owned.len(), budget, move |i| owned[i]);
        let outcome = SupgSession::over(&data)
            .query(&query)
            .selector(SelectorKind::Uniform)
            .seed(seed)
            .run(&mut oracle)
            .unwrap();
        // Every record the oracle labeled positive must be in the result.
        for idx in oracle.known_positives() {
            prop_assert!(outcome.result.contains(idx));
        }
        // Every returned record is above τ or a known positive.
        for idx in outcome.result.iter() {
            let above = data.score(idx) >= outcome.tau;
            let known = oracle.cached(idx) == Some(true);
            prop_assert!(above || known);
        }
    }

    #[test]
    fn recall_curve_is_monotone_in_tau(
        pairs in prop::collection::vec((0.0f64..=1.0, any::<bool>(), 0.2f64..5.0), 1..100),
    ) {
        let indices: Vec<usize> = (0..pairs.len()).collect();
        let scores: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let labels: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.2).collect();
        let sample = OracleSample::from_parts(indices, scores, labels, weights);
        let mut last = f64::INFINITY;
        for i in 0..=20 {
            let tau = i as f64 / 20.0;
            let r = sample.recall_at(tau);
            prop_assert!(r <= last + 1e-9, "recall increased with tau");
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
            last = r;
        }
    }

    #[test]
    fn max_tau_for_recall_achieves_requested_recall(
        pairs in prop::collection::vec((0.0f64..=1.0, any::<bool>(), 0.2f64..5.0), 1..100),
        gamma in 0.05f64..=1.0,
    ) {
        let scores: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let labels: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.2).collect();
        let sample = OracleSample::from_parts(
            (0..pairs.len()).collect(), scores, labels, weights,
        );
        if let Some(tau) = sample.max_tau_for_recall(gamma) {
            prop_assert!(sample.recall_at(tau) + 1e-9 >= gamma.min(1.0));
        } else {
            prop_assert_eq!(sample.positive_count(), 0);
        }
    }

    #[test]
    fn selection_is_consistent_with_counts(
        scores in prop::collection::vec(0.0f64..=1.0, 1..200),
        tau in 0.0f64..=1.0,
    ) {
        let data = ScoredDataset::new(scores.clone()).unwrap();
        let selected = data.select(tau);
        prop_assert_eq!(selected.len(), data.count_at_least(tau));
        let direct = scores.iter().filter(|&&s| s >= tau).count();
        prop_assert_eq!(selected.len(), direct);
        for &i in selected {
            prop_assert!(scores[i as usize] >= tau);
        }
    }

    #[test]
    fn top_k_is_a_superset_of_k(scores in prop::collection::vec(0.0f64..=1.0, 1..100), k in 1usize..100) {
        let data = ScoredDataset::new(scores).unwrap();
        let top = data.top_k(k);
        prop_assert!(top.len() >= k.min(data.len()));
        // Everything in the top-k set scores at least the k-th score.
        let kth = data.kth_highest_score(k);
        for &i in top {
            prop_assert!(data.score(i as usize) >= kth);
        }
    }

    #[test]
    fn oracle_cache_makes_repeats_free(
        labels in prop::collection::vec(any::<bool>(), 1..100),
        queries in prop::collection::vec(0usize..100, 1..50),
    ) {
        let n = labels.len();
        let mut oracle = CachedOracle::from_labels(labels.clone(), n);
        let mut distinct = std::collections::HashSet::new();
        for q in queries {
            let idx = q % n;
            distinct.insert(idx);
            let got = oracle.label(idx).unwrap();
            prop_assert_eq!(got, labels[idx]);
        }
        prop_assert_eq!(oracle.calls_used(), distinct.len());
    }
}
