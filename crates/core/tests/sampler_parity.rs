//! Cross-path parity & determinism contracts of the cold-start serving
//! path:
//!
//! 1. **Sampler-strategy contracts.** `SamplerStrategy::Alias` and
//!    `::Cdf` consume the seeded RNG stream differently (alias: uniform
//!    index + uniform float per draw; CDF: one uniform float), so their
//!    outcomes differ — each strategy is therefore pinned individually:
//!    bit-exact determinism per (data, seed, strategy), prepared ≡ cold
//!    bit-parity *within* each strategy, and identical guarantee
//!    accounting across strategies (budget respected, draws = budget,
//!    result = `D(τ) ∪ R1`, duplicate-free).
//! 2. **Auto transitions.** `SamplerStrategy::Auto` must serve the exact
//!    CDF outcome while a recipe is cold and the exact alias outcome once
//!    it recurs (or was warmed).
//! 3. **Alias-build determinism.** The chunk-partitioned Vose feed build
//!    must produce bit-identical tables at every parallelism and explicit
//!    chunk count — mirroring `rank_parity.rs`'s build-determinism cases.
//! 4. **`ResultView` vs `SelectionResult`.** The borrowed view must agree
//!    with the owned materialization — same order, membership, bounds and
//!    duplicate-freedom — at thresholds on, between and outside the score
//!    boundaries, and `run_view` must reproduce `run` bit-for-bit.

use std::sync::Arc;

use proptest::prelude::*;
use supg_core::rank::RankIndex;
use supg_core::{
    CachedOracle, PreparedDataset, QueryOutcome, ResultView, RuntimeConfig, SamplerStrategy,
    ScoredDataset, SelectionResult, SelectorKind, SupgSession, WeightArtifacts,
};

fn rare(n: usize, seed: u64) -> (ScoredDataset, Vec<bool>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use supg_stats::dist::{Bernoulli, Beta};
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Beta::new(0.08, 2.0);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a = dist.sample(&mut rng);
        scores.push(a);
        labels.push(Bernoulli::new(a).sample(&mut rng));
    }
    (ScoredDataset::new(scores).unwrap(), labels)
}

fn run_strategy(
    session: SupgSession<'_>,
    labels: &[bool],
    budget: usize,
    strategy: SamplerStrategy,
    seed: u64,
) -> QueryOutcome {
    let mut oracle = CachedOracle::from_labels(labels.to_vec(), budget);
    session
        .recall(0.9)
        .budget(budget)
        .selector(SelectorKind::ImportanceSampling)
        .sampler_strategy(strategy)
        .seed(seed)
        .run(&mut oracle)
        .unwrap()
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.tau.to_bits(), b.tau.to_bits(), "{context}: tau");
    assert_eq!(a.result.indices(), b.result.indices(), "{context}: result");
    assert_eq!(a.oracle_calls, b.oracle_calls, "{context}: oracle calls");
    assert_eq!(a.sample_draws, b.sample_draws, "{context}: draws");
    assert_eq!(
        a.sample_positives, b.sample_positives,
        "{context}: positives"
    );
}

/// The Algorithm-1 result-set contract every strategy must satisfy:
/// `R = D(τ) ∪ R1` — each returned record is above the threshold or a
/// labeled positive — duplicate-free, in-bounds, with the full threshold
/// set present.
fn assert_guarantee_accounting(
    outcome: &QueryOutcome,
    data: &ScoredDataset,
    labels: &[bool],
    budget: usize,
    context: &str,
) {
    assert!(
        outcome.oracle_calls <= budget,
        "{context}: {} oracle calls > budget {budget}",
        outcome.oracle_calls
    );
    assert_eq!(outcome.sample_draws, budget, "{context}: draw count");
    assert_eq!(outcome.filter_calls, 0, "{context}: no JT filter ran");
    assert_eq!(outcome.candidates, outcome.result.len(), "{context}");
    let mut seen = outcome.result.indices().to_vec();
    seen.sort_unstable();
    let dedup_len = {
        let mut d = seen.clone();
        d.dedup();
        d.len()
    };
    assert_eq!(dedup_len, outcome.result.len(), "{context}: duplicates");
    for &i in outcome.result.indices() {
        assert!(i < data.len(), "{context}: index {i} out of bounds");
        assert!(
            data.score(i) >= outcome.tau || labels[i],
            "{context}: record {i} below τ and not a labeled positive"
        );
    }
    // The threshold set is fully present.
    assert_eq!(
        outcome
            .result
            .indices()
            .iter()
            .filter(|&&i| data.score(i) >= outcome.tau)
            .count(),
        data.count_at_least(outcome.tau),
        "{context}: D(τ) incomplete"
    );
}

#[test]
fn each_strategy_is_deterministic_and_guaranteed_accountable() {
    let (data, labels) = rare(20_000, 70);
    let budget = 800;
    for strategy in [SamplerStrategy::Alias, SamplerStrategy::Cdf] {
        let a = run_strategy(SupgSession::over(&data), &labels, budget, strategy, 404);
        let b = run_strategy(SupgSession::over(&data), &labels, budget, strategy, 404);
        assert_outcomes_identical(&a, &b, &format!("{strategy:?} determinism"));
        assert_guarantee_accounting(&a, &data, &labels, budget, &format!("{strategy:?}"));
    }
}

#[test]
fn prepared_matches_cold_within_each_strategy() {
    // The prepared ≡ cold bit-parity contract holds per strategy — for
    // Cdf too, because the CDF build is the same serial prefix sum
    // wherever it runs.
    let (data, labels) = rare(16_000, 71);
    let prepared = PreparedDataset::new(data.clone());
    for strategy in [SamplerStrategy::Alias, SamplerStrategy::Cdf] {
        let cold = run_strategy(SupgSession::over(&data), &labels, 700, strategy, 31);
        let warm = run_strategy(
            SupgSession::over_prepared(&prepared),
            &labels,
            700,
            strategy,
            31,
        );
        assert_outcomes_identical(&cold, &warm, &format!("{strategy:?} prepared vs cold"));
    }
    // Distinct backends cache under distinct keys.
    assert_eq!(prepared.cached_recipes(), 2);
}

#[test]
fn auto_serves_cdf_cold_and_alias_once_recurring() {
    let (data, labels) = rare(16_000, 72);

    // Cold views resolve Auto to the one-shot CDF build.
    let auto_cold = run_strategy(
        SupgSession::over(&data),
        &labels,
        700,
        SamplerStrategy::Auto,
        5,
    );
    let cdf_cold = run_strategy(
        SupgSession::over(&data),
        &labels,
        700,
        SamplerStrategy::Cdf,
        5,
    );
    assert_outcomes_identical(&auto_cold, &cdf_cold, "cold Auto ≡ Cdf");

    // Prepared: first request = CDF one-shot (nothing cached), second
    // request promotes the recipe to the cached alias table.
    let prepared = PreparedDataset::new(data.clone());
    let q1 = run_strategy(
        SupgSession::over_prepared(&prepared),
        &labels,
        700,
        SamplerStrategy::Auto,
        5,
    );
    assert_outcomes_identical(&q1, &cdf_cold, "prepared Auto first query ≡ Cdf");
    assert_eq!(prepared.cached_recipes(), 0, "one-shot CDF is not cached");

    let alias_ref = run_strategy(
        SupgSession::over(&data),
        &labels,
        700,
        SamplerStrategy::Alias,
        5,
    );
    let q2 = run_strategy(
        SupgSession::over_prepared(&prepared),
        &labels,
        700,
        SamplerStrategy::Auto,
        5,
    );
    assert_outcomes_identical(&q2, &alias_ref, "prepared Auto second query ≡ Alias");
    assert_eq!(prepared.cached_recipes(), 1, "promotion cached the alias");
    let q3 = run_strategy(
        SupgSession::over_prepared(&prepared),
        &labels,
        700,
        SamplerStrategy::Auto,
        5,
    );
    assert_outcomes_identical(&q3, &alias_ref, "prepared Auto steady state");
    assert_eq!(prepared.cached_recipes(), 1);
}

#[test]
fn warming_promotes_auto_to_alias_immediately() {
    let (data, labels) = rare(12_000, 73);
    let prepared = PreparedDataset::new(data.clone());
    prepared.warm(&supg_core::selectors::SelectorConfig::default());
    let alias_ref = run_strategy(
        SupgSession::over(&data),
        &labels,
        500,
        SamplerStrategy::Alias,
        8,
    );
    let warmed = run_strategy(
        SupgSession::over_prepared(&prepared),
        &labels,
        500,
        SamplerStrategy::Auto,
        8,
    );
    assert_outcomes_identical(&warmed, &alias_ref, "warmed Auto ≡ Alias");
}

#[test]
fn cdf_strategy_runs_every_importance_selector_and_jt() {
    // The strategy knob reaches the one-stage, two-stage and JT pipelines.
    let (data, labels) = rare(15_000, 74);
    for (kind, precision) in [
        (SelectorKind::ImportanceSampling, false),
        (SelectorKind::ImportanceSampling, true),
        (SelectorKind::TwoStage, true),
    ] {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 600);
        let session = SupgSession::over(&data)
            .budget(600)
            .selector(kind)
            .sampler_strategy(SamplerStrategy::Cdf)
            .seed(99);
        let session = if precision {
            session.precision(0.85)
        } else {
            session.recall(0.9)
        };
        let outcome = session.run(&mut oracle).unwrap();
        assert!(outcome.oracle_calls <= 600);
    }
    let mut oracle = CachedOracle::from_labels(labels.clone(), 0);
    let jt = SupgSession::over(&data)
        .recall(0.8)
        .precision(0.9)
        .joint(500)
        .sampler_strategy(SamplerStrategy::Cdf)
        .seed(99)
        .run(&mut oracle)
        .unwrap();
    assert!(jt.joint);
    for i in jt.result.iter() {
        assert!(labels[i], "JT kept an oracle-negative record {i}");
    }
}

// --- Alias-build determinism (mirrors rank_parity.rs's build cases) ---

fn assert_artifacts_bit_identical(a: &WeightArtifacts, b: &WeightArtifacts, context: &str) {
    let (wa, wb) = (a.weights(), b.weights());
    assert_eq!(wa.len(), wb.len(), "{context}: length");
    for i in 0..wa.len() {
        assert_eq!(
            wa.prob(i).to_bits(),
            wb.prob(i).to_bits(),
            "{context}: weight prob {i}"
        );
    }
    // Structural table equality: accept/alias/probs arrays, bit for bit.
    assert_eq!(
        a.alias_sampler().expect("alias-backed"),
        b.alias_sampler().expect("alias-backed"),
        "{context}: alias table layout"
    );
}

#[test]
fn alias_build_is_bit_identical_at_any_parallelism_and_chunking() {
    // Above MIN_PARALLEL_INPUT so the chunked path actually engages, with
    // heavy ties and a zero-weight band (scaled < 1 and ≥ 1 slots mixed).
    let scores: Vec<f64> = (0..60_000)
        .map(|i| ((i * 7919) % 997) as f64 / 997.0)
        .collect();
    let serial = WeightArtifacts::build(&scores, 0.5, 0.1);
    for parallelism in [1usize, 4, 8] {
        let rt = RuntimeConfig::default().with_parallelism(parallelism);
        let pooled = WeightArtifacts::build_with(&scores, 0.5, 0.1, &rt);
        assert_artifacts_bit_identical(&serial, &pooled, &format!("parallelism={parallelism}"));
    }
    for runs in [1usize, 2, 3, 5, 8, 16] {
        let chunked = WeightArtifacts::build_chunked(&scores, 0.5, 0.1, runs);
        assert_artifacts_bit_identical(&serial, &chunked, &format!("runs={runs}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_alias_builds_match_serial(raw in prop::collection::vec(0u32..1000, 1..300)) {
        let scores: Vec<f64> = raw.into_iter().map(|q| q as f64 / 1000.0).collect();
        // Small inputs take the serial path inside build_chunked; force
        // the chunk machinery through the sampling crate's feed API too.
        let serial = supg_sampling::AliasTable::new(&scores_nonzero(&scores));
        let weights = scores_nonzero(&scores);
        let total: f64 = weights.iter().sum();
        for chunks in [1usize, 2, 3, 7] {
            let n = weights.len();
            let per = n.div_ceil(chunks);
            let feeds: Vec<_> = (0..chunks)
                .map(|c| {
                    let lo = (c * per).min(n);
                    let hi = ((c + 1) * per).min(n);
                    supg_sampling::alias::feed_slice(&weights[lo..hi], total, n, lo)
                })
                .filter(|f| !f.probs.is_empty())
                .collect();
            let chunked = supg_sampling::AliasTable::from_feeds(feeds);
            prop_assert_eq!(&chunked, &serial, "chunks={}", chunks);
        }
    }
}

/// Guards against the all-zero-weight panic in the proptest above.
fn scores_nonzero(scores: &[f64]) -> Vec<f64> {
    if scores.iter().all(|&s| s == 0.0) {
        vec![1.0; scores.len()]
    } else {
        scores.to_vec()
    }
}

// --- ResultView vs SelectionResult ---

/// Quantized scores (÷ granularity) so every dataset carries heavy ties.
fn tied_dataset() -> impl Strategy<Value = Vec<f64>> {
    (2u32..40, prop::collection::vec(0u32..4000, 1..400)).prop_map(|(gran, raw)| {
        raw.into_iter()
            .map(|q| (q % (gran + 1)) as f64 / gran as f64)
            .collect()
    })
}

/// Thresholds that land on, between, and outside the score boundaries.
fn taus_for(scores: &[f64]) -> Vec<f64> {
    let mut taus = vec![-1.0, 0.0, 1.0, 1.5, f64::INFINITY];
    for &s in scores.iter().take(8) {
        taus.push(s);
        taus.push(s + 1e-9);
        taus.push((s - 1e-9).max(0.0));
    }
    taus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn view_agrees_with_owned_result_everywhere(
        scores in tied_dataset(),
        extra_picks in prop::collection::vec(0usize..10_000, 0..20),
    ) {
        let index = RankIndex::build_serial(&scores);
        let mut extras: Vec<usize> = extra_picks.iter().map(|p| p % scores.len()).collect();
        extras.sort_unstable();
        extras.dedup();
        for tau in taus_for(&scores) {
            let view = ResultView::over(&index, tau, &extras);
            let owned = SelectionResult::from_ranked(index.materialize_union(tau, &extras));

            // Same order, same length, same split.
            let from_view: Vec<usize> = view.iter().collect();
            prop_assert_eq!(&from_view, &owned.indices().to_vec(), "tau={}", tau);
            prop_assert_eq!(view.len(), owned.len());
            prop_assert_eq!(view.is_empty(), owned.is_empty());
            prop_assert_eq!(view.threshold_len(), index.cut_for(tau));
            prop_assert_eq!(view.threshold_len() + view.extras().len(), view.len());

            // In-bounds and duplicate-free.
            let mut seen = from_view.clone();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            prop_assert_eq!(seen.len(), before, "duplicates at tau={}", tau);
            prop_assert!(from_view.iter().all(|&i| i < scores.len()));

            // Membership parity, including absent indices.
            for probe in 0..scores.len().min(16) {
                prop_assert_eq!(view.contains(probe), owned.contains(probe), "probe {}", probe);
            }
            prop_assert!(!view.contains(scores.len()), "out-of-range index");

            // The deferred materialization is the owned result, bit for bit.
            prop_assert_eq!(&view.to_result(), &owned);
        }
    }
}

#[test]
fn run_view_reproduces_run_bit_for_bit() {
    let (data, labels) = rare(18_000, 75);
    for strategy in [SamplerStrategy::Alias, SamplerStrategy::Cdf] {
        let session = SupgSession::over(&data)
            .recall(0.9)
            .budget(700)
            .selector(SelectorKind::ImportanceSampling)
            .sampler_strategy(strategy)
            .seed(606);
        let mut o1 = CachedOracle::from_labels(labels.clone(), 700);
        let owned = session.clone().run(&mut o1).unwrap();
        let mut o2 = CachedOracle::from_labels(labels.clone(), 700);
        let streamed = session.run_view(&mut o2).unwrap();

        assert_eq!(streamed.tau.to_bits(), owned.tau.to_bits());
        assert_eq!(streamed.candidates, owned.candidates);
        assert_eq!(streamed.oracle_calls, owned.oracle_calls);
        let from_view: Vec<usize> = streamed.result.iter().collect();
        assert_eq!(from_view.as_slice(), owned.result.indices());
        // The zero-copy prefix really borrows the dataset's rank order.
        assert_eq!(
            streamed.result.tau_prefix(),
            &data.rank_index().order()[..streamed.result.threshold_len()]
        );
        assert_eq!(streamed.into_owned().result, owned.result);
    }
}

#[test]
fn run_view_streams_joint_sessions_and_shared_sessions() {
    let (data, labels) = rare(8_000, 76);
    let session = SupgSession::over(&data)
        .recall(0.8)
        .precision(0.9)
        .joint(300)
        .seed(77);

    // JT streams now: the filtered view reproduces run(..) bit for bit —
    // surviving prefix members are rank positions over the borrowed
    // index, never an owned copy of the record set.
    let mut o1 = CachedOracle::from_labels(labels.clone(), 300);
    let owned = session.clone().run(&mut o1).unwrap();
    let mut o2 = CachedOracle::from_labels(labels.clone(), 300);
    let streamed = session.run_view(&mut o2).unwrap();
    assert!(streamed.joint);
    assert!(streamed.result.is_filtered());
    assert_eq!(streamed.tau.to_bits(), owned.tau.to_bits());
    assert_eq!(streamed.candidates, owned.candidates);
    assert_eq!(streamed.oracle_calls, owned.oracle_calls);
    assert_eq!(streamed.stage_calls, owned.stage_calls);
    assert_eq!(streamed.filter_calls, owned.filter_calls);
    let from_view: Vec<usize> = streamed.result.iter().collect();
    assert_eq!(from_view.as_slice(), owned.result.indices());
    for probe in 0..labels.len().min(64) {
        assert_eq!(
            streamed.result.contains(probe),
            owned.result.contains(probe),
            "membership mismatch at {probe}"
        );
    }
    assert_eq!(streamed.into_owned().result, owned.result);

    // The plain-Oracle streaming entry point rejects JT (it cannot
    // re-budget the oracle between stages).
    let mut oracle = CachedOracle::from_labels(labels.clone(), 300);
    let err = session.run_view_single_target(&mut oracle).unwrap_err();
    assert!(matches!(err, supg_core::SupgError::InvalidQuery(_)));

    // A session owning a shared prepared handle can stream too (the view
    // borrows from the session itself).
    let prepared = Arc::new(PreparedDataset::new(data));
    let session = SupgSession::over_shared(Arc::clone(&prepared))
        .recall(0.9)
        .budget(300)
        .seed(2);
    let mut oracle = CachedOracle::from_labels(labels, 300);
    let streamed = session.run_view(&mut oracle).unwrap();
    assert!(!streamed.result.is_empty());
}
