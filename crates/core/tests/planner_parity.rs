//! Planner determinism and planned-vs-hand-tuned bit parity.
//!
//! Two contracts pinned here:
//!
//! 1. **Purity** — [`Plan::resolve`] is a pure function of its
//!    [`PlanSignals`] snapshot: the same snapshot always resolves to
//!    the same plan, and every resolved plan satisfies the planner's
//!    invariants (no unresolved `Auto`, the serial floor on build
//!    chunks, caller pins honored verbatim).
//! 2. **Parity** — a query executed through a [`Planner`] is
//!    bit-identical to the same query hand-tuned to the plan's resolved
//!    configuration, across RT/PT/JT, flat and segmented layouts, cold
//!    and warm caches, and every `parallelism`/`batch_size` setting
//!    (the runtime knobs are unobservable in answer bits). The plan is
//!    a debug report, never a different answer.

use proptest::prelude::*;
use supg_core::plan::{Plan, PlanPolicy, PlanSignals, Planner};
use supg_core::runtime::MIN_PARALLEL_INPUT;
use supg_core::{
    CachedOracle, PreparedDataset, QueryOutcome, RecipeState, RuntimeConfig, SamplerStrategy,
    SegmentedDataset, SelectorKind, SupgSession,
};

fn recipe_strategy() -> impl Strategy<Value = RecipeState> {
    prop_oneof![
        Just(RecipeState::Cold),
        Just(RecipeState::SeenOnce),
        Just(RecipeState::WarmCdf),
        Just(RecipeState::WarmAlias),
    ]
}

fn sampler_strategy() -> impl Strategy<Value = SamplerStrategy> {
    prop_oneof![
        Just(SamplerStrategy::Auto),
        Just(SamplerStrategy::Alias),
        Just(SamplerStrategy::Cdf),
    ]
}

fn signals_strategy() -> impl Strategy<Value = PlanSignals> {
    (
        (
            0usize..(MIN_PARALLEL_INPUT * 4),
            0usize..8,
            any::<bool>(),
            recipe_strategy(),
            sampler_strategy(),
        ),
        (
            prop::option::of(1usize..16),
            prop::option::of(1.0f64..1.0e7),
            1usize..16,
            0.25f64..4.0,
            prop::option::of(sampler_strategy()),
            any::<bool>(),
        ),
    )
        .prop_map(
            |(
                (n, segments, prepared, recipe, requested_sampler),
                (pinned_par, oracle_ns, cores, speedup, pin_sampler, forbid_cdf),
            )| {
                PlanSignals {
                    n,
                    segments,
                    prepared,
                    recipe,
                    requested_sampler,
                    pinned_runtime: pinned_par
                        .map(|p| RuntimeConfig::default().with_parallelism(p)),
                    oracle_ns_per_call: oracle_ns,
                    effective_cores: cores,
                    chunked_sort_speedup: speedup,
                    policy: PlanPolicy {
                        pin_sampler,
                        forbid_cdf,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Same snapshot ⇒ same plan, field for field, rationale included.
    #[test]
    fn resolve_is_a_pure_function_of_the_snapshot(signals in signals_strategy()) {
        let a = Plan::resolve(&signals);
        let b = Plan::resolve(&signals);
        prop_assert_eq!(a, b);
    }

    // Structural invariants of every resolvable plan.
    #[test]
    fn every_plan_satisfies_the_planner_invariants(signals in signals_strategy()) {
        let plan = Plan::resolve(&signals);

        // Resolution is the planner's job: `Auto` never leaks through.
        prop_assert!(plan.sampler != SamplerStrategy::Auto);

        // Serial floor: chunked builds only where the calibration
        // measured a win on an input large enough to dispatch.
        if signals.effective_cores == 1
            || signals.chunked_sort_speedup < 1.0
            || signals.n < MIN_PARALLEL_INPUT
        {
            prop_assert_eq!(plan.chunks, 1);
        }
        prop_assert!(plan.chunks >= 1);
        prop_assert!(plan.chunks <= signals.effective_cores.max(1));

        // A caller-pinned runtime is honored verbatim.
        if let Some(pinned) = signals.pinned_runtime {
            prop_assert_eq!(plan.parallelism, pinned.parallelism);
            prop_assert_eq!(plan.batch_size, pinned.batch_size);
        }
        prop_assert!(plan.parallelism >= 1);
        prop_assert!(plan.batch_size >= 1);

        // Policy guardrails always hold, even against pins.
        if signals.policy.forbid_cdf {
            prop_assert!(plan.sampler != SamplerStrategy::Cdf);
        } else if let Some(pin) = signals.policy.pin_sampler {
            if pin != SamplerStrategy::Auto {
                prop_assert_eq!(plan.sampler, pin);
            }
        }

        // Every knob left a rationale entry.
        prop_assert!(plan.rationale.len() >= 3);
    }
}

// ---------------------------------------------------------------------
// Planned-vs-hand-tuned execution parity.
// ---------------------------------------------------------------------

const N: usize = 20_000;
const SEED: u64 = 7;
const BUDGET: usize = 1_000;

fn scores() -> Vec<f64> {
    (0..N).map(|i| (i % 1000) as f64 / 1000.0).collect()
}

fn labels() -> Vec<bool> {
    scores().iter().map(|&s| s > 0.8).collect()
}

fn oracle() -> CachedOracle {
    CachedOracle::from_labels(labels(), BUDGET * 4)
}

#[derive(Clone, Copy)]
enum Target {
    Rt,
    Pt,
    Jt,
}

fn with_target(session: SupgSession<'_>, target: Target) -> SupgSession<'_> {
    match target {
        Target::Rt => session.recall(0.9).budget(BUDGET),
        Target::Pt => session.precision(0.9).budget(BUDGET),
        Target::Jt => session.recall(0.8).precision(0.9).joint(BUDGET),
    }
}

/// Asserts two outcomes are bit-identical in every answer-bearing
/// field. Wall-clock timings and the plan report are execution
/// metadata, excluded by contract.
fn assert_bit_identical(planned: &QueryOutcome, hand: &QueryOutcome, what: &str) {
    assert_eq!(
        planned.tau.to_bits(),
        hand.tau.to_bits(),
        "{what}: tau differs"
    );
    assert_eq!(
        planned.result.indices(),
        hand.result.indices(),
        "{what}: result set differs"
    );
    assert_eq!(planned.selector, hand.selector, "{what}");
    assert_eq!(planned.oracle_calls, hand.oracle_calls, "{what}");
    assert_eq!(planned.stage_calls, hand.stage_calls, "{what}");
    assert_eq!(planned.filter_calls, hand.filter_calls, "{what}");
    assert_eq!(planned.sample_draws, hand.sample_draws, "{what}");
    assert_eq!(planned.sample_positives, hand.sample_positives, "{what}");
    assert_eq!(planned.candidates, hand.candidates, "{what}");
    assert_eq!(planned.joint, hand.joint, "{what}");
    assert_eq!(planned.cache_hits, hand.cache_hits, "{what}");
    assert_eq!(planned.cache_misses, hand.cache_misses, "{what}");
    assert_eq!(planned.n_records, hand.n_records, "{what}");
}

/// Flat layout: planned (Auto sampler, adaptive runtime) vs hand-tuned
/// to the resolved config, cold then warm, at hand parallelism
/// {1, 4, 8}.
#[test]
fn planned_matches_hand_tuned_flat() {
    for (target, name) in [(Target::Rt, "RT"), (Target::Pt, "PT"), (Target::Jt, "JT")] {
        let planner = Planner::new();
        let planned_data = PreparedDataset::from_scores(scores()).unwrap();
        let run_planned = || {
            with_target(SupgSession::over_prepared(&planned_data), target)
                .selector(SelectorKind::ImportanceSampling)
                .sampler_strategy(SamplerStrategy::Auto)
                .seed(SEED)
                .planned(&planner)
                .run(&mut oracle())
                .unwrap()
        };
        let cold = run_planned();
        let warm = run_planned();
        let cold_plan = cold.plan.as_ref().expect("planned outcome carries a plan");
        let warm_plan = warm.plan.as_ref().unwrap();

        for p in [1usize, 4, 8] {
            let hand_data = PreparedDataset::from_scores(scores()).unwrap();
            let run_hand = |plan: &supg_core::Plan| {
                with_target(SupgSession::over_prepared(&hand_data), target)
                    .selector(SelectorKind::ImportanceSampling)
                    .sampler_strategy(plan.sampler)
                    .parallelism(p)
                    .batch_size(plan.batch_size)
                    .seed(SEED)
                    .run(&mut oracle())
                    .unwrap()
            };
            let hand_cold = run_hand(cold_plan);
            let hand_warm = run_hand(warm_plan);
            assert_bit_identical(&cold, &hand_cold, &format!("{name} flat cold p={p}"));
            assert_bit_identical(&warm, &hand_warm, &format!("{name} flat warm p={p}"));
            assert!(hand_cold.plan.is_none(), "hand-tuned runs carry no plan");
        }
    }
}

/// Segmented layout: the same contract over a segmented dataset.
#[test]
fn planned_matches_hand_tuned_segmented() {
    for (target, name) in [(Target::Rt, "RT"), (Target::Pt, "PT"), (Target::Jt, "JT")] {
        let planner = Planner::new();
        let planned_data = SegmentedDataset::new(scores(), 1 << 10).unwrap();
        let cold = with_target(SupgSession::over_segmented(&planned_data), target)
            .selector(SelectorKind::ImportanceSampling)
            .sampler_strategy(SamplerStrategy::Auto)
            .seed(SEED)
            .planned(&planner)
            .run(&mut oracle())
            .unwrap();
        let plan = cold.plan.as_ref().expect("planned outcome carries a plan");

        for p in [1usize, 4, 8] {
            let hand_data = SegmentedDataset::new(scores(), 1 << 10).unwrap();
            let hand = with_target(SupgSession::over_segmented(&hand_data), target)
                .selector(SelectorKind::ImportanceSampling)
                .sampler_strategy(plan.sampler)
                .parallelism(p)
                .batch_size(plan.batch_size)
                .seed(SEED)
                .run(&mut oracle())
                .unwrap();
            assert_bit_identical(&cold, &hand, &format!("{name} segmented p={p}"));
        }
    }
}

/// A planner observing a cold prepared dataset resolves the CDF backend
/// first (cheapest measured build), then promotes the recurring recipe
/// to the alias backend (O(1) draws beat per-draw CDF binary search once
/// the recipe is warm) and keeps hitting the cached alias table from the
/// third query on — and every decision executes bit-identical to the
/// hand-tuned equivalents above. Sanity-check the resolution here so the
/// parity tests can't silently degenerate to comparing two identical
/// hand configs.
#[test]
fn planner_resolves_cold_auto_to_cdf_then_promotes() {
    let planner = Planner::new();
    let data = PreparedDataset::from_scores(scores()).unwrap();
    let run = || {
        SupgSession::over_prepared(&data)
            .recall(0.9)
            .budget(BUDGET)
            .selector(SelectorKind::ImportanceSampling)
            .sampler_strategy(SamplerStrategy::Auto)
            .seed(SEED)
            .planned(&planner)
            .run(&mut oracle())
            .unwrap()
    };
    let cold = run();
    assert_eq!(cold.plan.as_ref().unwrap().sampler, SamplerStrategy::Cdf);
    let promoted = run();
    assert_eq!(
        promoted.plan.as_ref().unwrap().sampler,
        SamplerStrategy::Alias
    );
    let warm = run();
    assert_eq!(warm.plan.as_ref().unwrap().sampler, SamplerStrategy::Alias);
    assert!(warm.cache_hits > 0, "third query must reuse artifacts");
    let stats = planner.stats();
    assert_eq!(stats.planned, 3);
    assert_eq!(stats.resolved_cdf, 1);
    assert_eq!(stats.resolved_alias, 2);
    assert_eq!(stats.pinned, 0);
}
