//! Prepared-vs-cold session parity: a session over a
//! [`PreparedDataset`] must produce a `QueryOutcome` identical to a cold
//! session over the same data and seed — the artifact cache amortizes
//! setup cost, never changes results — for every registry selector, the
//! JT pipeline, every parallelism level, and across concurrent sessions
//! sharing one prepared corpus.

use std::sync::Arc;

use supg_core::{
    CachedOracle, PreparedDataset, QueryOutcome, ScoredDataset, SelectorKind, SupgSession,
    TargetKind,
};

fn rare(n: usize, seed: u64) -> (ScoredDataset, Vec<bool>) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use supg_stats::dist::{Bernoulli, Beta};
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = Beta::new(0.08, 2.0);
    let mut scores = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let a = dist.sample(&mut rng);
        scores.push(a);
        labels.push(Bernoulli::new(a).sample(&mut rng));
    }
    (ScoredDataset::new(scores).unwrap(), labels)
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, context: &str) {
    assert_eq!(a.tau.to_bits(), b.tau.to_bits(), "{context}: tau");
    assert_eq!(
        a.result.indices(),
        b.result.indices(),
        "{context}: result set"
    );
    assert_eq!(a.oracle_calls, b.oracle_calls, "{context}: oracle calls");
    assert_eq!(a.stage_calls, b.stage_calls, "{context}: stage calls");
    assert_eq!(a.filter_calls, b.filter_calls, "{context}: filter calls");
    assert_eq!(a.sample_draws, b.sample_draws, "{context}: draws");
    assert_eq!(
        a.sample_positives, b.sample_positives,
        "{context}: positives"
    );
    assert_eq!(a.selector, b.selector, "{context}: selector");
}

#[test]
fn prepared_sessions_match_cold_sessions_for_every_selector() {
    let (data, labels) = rare(20_000, 77);
    let prepared = PreparedDataset::new(data.clone());
    for (kind, target) in SelectorKind::registry() {
        for parallelism in [1usize, 4] {
            let run = |session: SupgSession<'_>| -> QueryOutcome {
                let session = match target {
                    TargetKind::Recall => session.recall(0.9),
                    TargetKind::Precision => session.precision(0.85),
                };
                let mut oracle = CachedOracle::from_labels(labels.clone(), 1_000);
                session
                    .budget(1_000)
                    .selector(kind)
                    .parallelism(parallelism)
                    .seed(4242)
                    .run(&mut oracle)
                    .unwrap()
            };
            let cold = run(SupgSession::over(&data));
            let warm = run(SupgSession::over_prepared(&prepared));
            let name = kind.paper_name(target).unwrap();
            assert_outcomes_identical(&cold, &warm, &format!("{name} @p{parallelism}"));
        }
    }
    // Every importance-family selector above shares one cached recipe.
    assert_eq!(prepared.cached_recipes(), 1);
}

#[test]
fn prepared_jt_pipeline_matches_cold() {
    let (data, labels) = rare(15_000, 78);
    let prepared = PreparedDataset::new(data.clone());
    let run = |session: SupgSession<'_>| {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 0);
        session
            .recall(0.8)
            .precision(0.9)
            .joint(800)
            .seed(99)
            .run(&mut oracle)
            .unwrap()
    };
    let cold = run(SupgSession::over(&data));
    let warm = run(SupgSession::over_prepared(&prepared));
    assert!(warm.joint);
    assert_outcomes_identical(&cold, &warm, "JT");
}

#[test]
fn concurrent_shared_sessions_reproduce_the_cold_outcome() {
    let (data, labels) = rare(10_000, 79);
    let mut cold_oracle = CachedOracle::from_labels(labels.clone(), 800);
    let cold = SupgSession::over(&data)
        .recall(0.9)
        .budget(800)
        .seed(7)
        .run(&mut cold_oracle)
        .unwrap();

    let prepared = Arc::new(PreparedDataset::new(data));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let prepared = Arc::clone(&prepared);
            let labels = labels.clone();
            std::thread::spawn(move || {
                let mut oracle = CachedOracle::from_labels(labels, 800);
                SupgSession::over_shared(prepared)
                    .recall(0.9)
                    .budget(800)
                    .seed(7)
                    .run(&mut oracle)
                    .unwrap()
            })
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.join().unwrap();
        assert_outcomes_identical(&cold, &outcome, &format!("shared session {i}"));
    }
    assert_eq!(prepared.cached_recipes(), 1);
}

#[test]
fn pooled_preparation_matches_cold_sessions() {
    // Artifacts built eagerly on an 8-wide worker pool (rank index via
    // chunked sort + merge, weight feeds via chunked transforms) must
    // serve the exact outcome a cold session computes from scratch.
    let (data, labels) = rare(16_000, 81);
    let prepared = PreparedDataset::new(data.clone())
        .with_runtime(supg_core::RuntimeConfig::default().with_parallelism(8));
    prepared.prepare();
    prepared.warm(&supg_core::selectors::SelectorConfig::default());
    let run = |session: SupgSession<'_>| {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 900);
        session
            .recall(0.9)
            .budget(900)
            .seed(4711)
            .run(&mut oracle)
            .unwrap()
    };
    let cold = run(SupgSession::over(&data));
    let warm = run(SupgSession::over_prepared(&prepared));
    assert_outcomes_identical(&cold, &warm, "pooled preparation");
    assert_eq!(cold.tau.to_bits(), warm.tau.to_bits());
}

#[test]
fn warmed_cache_serves_without_growth() {
    let (data, labels) = rare(5_000, 80);
    let prepared = PreparedDataset::new(data);
    prepared.warm(&supg_core::selectors::SelectorConfig::default());
    assert_eq!(prepared.cached_recipes(), 1);
    for seed in 0..4 {
        let mut oracle = CachedOracle::from_labels(labels.clone(), 400);
        SupgSession::over_prepared(&prepared)
            .precision(0.8)
            .budget(400)
            .seed(seed)
            .run(&mut oracle)
            .unwrap();
    }
    // Repeated default-recipe queries never rebuild or duplicate entries.
    assert_eq!(prepared.cached_recipes(), 1);
}
