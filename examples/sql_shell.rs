//! A tiny SUPG SQL shell over a synthetic demo table.
//!
//! Pass queries as command-line arguments, or run with none to execute a
//! scripted demo session. The demo table `events` has 100k records with a
//! calibrated proxy `score` and an oracle UDF `IS_EVENT`.
//!
//! ```sh
//! cargo run --release --example sql_shell
//! cargo run --release --example sql_shell -- \
//!   "SELECT * FROM events WHERE IS_EVENT(x) ORACLE LIMIT 2000 \
//!    USING score RECALL TARGET 80% WITH PROBABILITY 95%"
//! ```

use supg::datasets::BetaDataset;
use supg::query::Engine;

fn main() {
    let generated = BetaDataset::new(0.02, 2.0, 100_000).generate(5);
    let (scores, truth) = generated.into_parts();
    let positives = truth.iter().filter(|&&l| l).count();

    let mut engine = Engine::with_seed(77);
    engine.create_table("events", scores.len());
    engine
        .register_proxy("events", "score", scores)
        .expect("proxy");
    let labels = truth.clone();
    engine
        .register_oracle("events", "IS_EVENT", move |i| labels[i])
        .expect("oracle");
    println!(
        "table `events`: {} records, {positives} true events; proxy `score`, oracle `IS_EVENT`\n",
        truth.len()
    );

    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec![
            "SELECT * FROM events WHERE IS_EVENT(x) ORACLE LIMIT 2000 \
             USING score RECALL TARGET 90% WITH PROBABILITY 95%"
                .to_owned(),
            "SELECT * FROM events WHERE IS_EVENT(x) ORACLE LIMIT 2000 \
             USING score PRECISION TARGET 90% WITH PROBABILITY 95%"
                .to_owned(),
            // A deliberate error to show diagnostics.
            "SELECT * FROM events WHERE IS_EVENT(x) USING score \
             RECALL TARGET 90% WITH PROBABILITY 95%"
                .to_owned(),
        ]
    } else {
        args
    };

    for sql in queries {
        println!("supg> {sql}");
        match engine.execute(&sql) {
            Ok(report) => {
                let hits = report.indices.iter().filter(|&&i| truth[i]).count();
                println!(
                    "  {} records ({} true events) | tau {:.4e} | {} oracle calls | {} | {:?}\n",
                    report.indices.len(),
                    hits,
                    report.tau,
                    report.oracle_calls,
                    report.selector,
                    report.elapsed
                );
            }
            Err(e) => println!("  error: {e}\n"),
        }
    }
}
