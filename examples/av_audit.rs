//! The paper's §2.2 scenario: auditing an autonomous-vehicle training set
//! for unlabeled pedestrians — with model drift between collection runs.
//!
//! The fleet collects data in a new area; the labeling service misses some
//! pedestrians. An object detector (minus the already-labeled boxes) gives
//! proxy scores for "pedestrian present but unlabeled". Missing such frames
//! is safety-critical, so the query is recall-targeted. We also show why
//! the threshold fit on last month's data must not be reused: under drift
//! it silently loses recall, while SUPG re-estimates and keeps the
//! guarantee (paper §6.2, Table 4).
//!
//! ```sh
//! cargo run --release --example av_audit
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use supg::core::metrics::{evaluate, evaluate_threshold};
use supg::core::{CachedOracle, ScoredDataset, SelectorKind, SupgSession};
use supg::datasets::drift::day_shift;
use supg::datasets::{LabeledData, MixtureDataset};
use supg::stats::dist::Beta;

/// Exact recall threshold with full label knowledge (what an offline
/// calibration run would produce).
fn offline_recall_threshold(data: &LabeledData, gamma: f64) -> f64 {
    let mut positive_scores: Vec<f64> = data
        .scores()
        .iter()
        .zip(data.labels())
        .filter(|(_, &l)| l)
        .map(|(&s, _)| s)
        .collect();
    positive_scores.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let keep = ((gamma * positive_scores.len() as f64).ceil() as usize).max(1);
    positive_scores[keep - 1]
}

fn main() {
    // Collection run 1: 300k frames, 2% contain a missed pedestrian.
    let run1 =
        MixtureDataset::new(300_000, 0.02, Beta::new(7.0, 2.0), Beta::new(0.5, 6.0)).generate(11);
    // Collection run 2: same streets, different weather — the detector's
    // score distribution shifts.
    let mut drift_rng = StdRng::seed_from_u64(12);
    let run2 = day_shift(&run1, 1.35, &mut drift_rng);

    let gamma = 0.95;
    println!(
        "audit target: recall >= {:.0}% of frames with missed pedestrians\n",
        gamma * 100.0
    );

    // --- The tempting shortcut: reuse the threshold fit on run 1. --------
    let stale_tau = offline_recall_threshold(&run1, gamma);
    let on_run1 = evaluate_threshold(run1.scores(), run1.labels(), stale_tau);
    let on_run2 = evaluate_threshold(run2.scores(), run2.labels(), stale_tau);
    println!("fixed threshold fit on run 1 (tau = {stale_tau:.4}):");
    println!(
        "  recall on run 1: {:.1}%  (fit in-sample, fine)",
        100.0 * on_run1.recall
    );
    println!(
        "  recall on run 2: {:.1}%  <- silent violation under drift",
        100.0 * on_run2.recall
    );

    // --- The SUPG way: re-estimate on run 2 under a 5k label budget. ------
    let (scores, labels) = run2.into_parts();
    let dataset = ScoredDataset::new(scores).expect("valid scores");
    let truth = labels.clone();
    let mut oracle = CachedOracle::new(dataset.len(), 5_000, move |i| truth[i]);
    let outcome = SupgSession::over(&dataset)
        .recall(gamma)
        .delta(0.05)
        .budget(5_000)
        .selector(SelectorKind::ImportanceSampling)
        .seed(13)
        .run(&mut oracle)
        .expect("audit query failed");
    let quality = evaluate(outcome.result.indices(), &labels);
    println!("\nSUPG on run 2 (budget 5,000 labels, probability 95%):");
    println!(
        "  recall: {:.1}%   precision: {:.1}%   returned {} of {} frames",
        100.0 * quality.recall,
        100.0 * quality.precision,
        outcome.result.len(),
        dataset.len()
    );
    println!(
        "  labels spent: {} (threshold re-estimated at tau = {:.4})",
        outcome.oracle_calls, outcome.tau
    );
    println!("\nthe flagged frames now go back to the labeling service for correction.");
}
