//! Quickstart: run one recall-target and one precision-target SUPG query
//! on the paper's Beta(0.01, 2) synthetic dataset, through the core API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use supg::core::metrics::evaluate;
use supg::core::{CachedOracle, ScoredDataset, SelectorKind, SupgSession};
use supg::datasets::BetaDataset;

fn main() {
    // --- 1. A dataset with proxy scores and (hidden) ground truth. -------
    // The paper's synthetic: A(x) ~ Beta(0.01, 2), O(x) ~ Bernoulli(A(x)):
    // ~0.5% of records match, and the proxy is perfectly calibrated.
    let generated = BetaDataset::new(0.01, 2.0, 200_000).generate(42);
    let (scores, labels) = generated.into_parts();
    let positives = labels.iter().filter(|&&l| l).count();
    println!(
        "dataset: {} records, {positives} true matches",
        scores.len()
    );

    let dataset = ScoredDataset::new(scores).expect("valid scores");

    // --- 2. A recall-target query. ---------------------------------------
    // "Find ≥ 90% of all matches, with probability ≥ 95%, using at most
    // 2,000 oracle calls." The oracle is any expensive predicate — here it
    // just reads the ground-truth labels, in production it would ask a
    // human or a big DNN.
    let truth = labels.clone();
    let mut oracle = CachedOracle::new(dataset.len(), 2_000, move |i| truth[i]);

    let outcome = SupgSession::over(&dataset)
        .recall(0.90)
        .delta(0.05)
        .budget(2_000)
        .selector(SelectorKind::ImportanceSampling)
        .seed(7)
        .run(&mut oracle)
        .expect("query failed");
    let quality = evaluate(outcome.result.indices(), &labels);
    println!(
        "\nRT query ({}): returned {} records with {} oracle calls",
        outcome.selector,
        outcome.result.len(),
        outcome.oracle_calls,
    );
    println!(
        "  achieved recall  {:.1}%  (target 90%, guaranteed w.p. 95%)",
        100.0 * quality.recall
    );
    println!(
        "  achieved precision {:.1}%  (the RT quality metric)",
        100.0 * quality.precision
    );

    // --- 3. A precision-target query on the same data. -------------------
    let truth = labels.clone();
    let mut oracle = CachedOracle::new(dataset.len(), 2_000, move |i| truth[i]);
    let outcome = SupgSession::over(&dataset)
        .precision(0.90)
        .delta(0.05)
        .budget(2_000)
        .selector(SelectorKind::TwoStage)
        .seed(8)
        .run(&mut oracle)
        .expect("query failed");
    let quality = evaluate(outcome.result.indices(), &labels);
    println!(
        "\nPT query ({}): returned {} records with {} oracle calls",
        outcome.selector,
        outcome.result.len(),
        outcome.oracle_calls,
    );
    println!(
        "  achieved precision {:.1}%  (target 90%, guaranteed w.p. 95%)",
        100.0 * quality.precision
    );
    println!(
        "  achieved recall  {:.1}%  (the PT quality metric)",
        100.0 * quality.recall
    );
}
