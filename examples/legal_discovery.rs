//! The paper's §2.3 scenario: legal discovery over a document corpus, with
//! a precision target — plus a joint-target follow-up query.
//!
//! Contract lawyers must review every produced document, so a sloppy
//! (low-precision) selection directly costs billable hours. The firm
//! fine-tunes a language model as a proxy and asks for 90% precision; the
//! lawyers then escalate to a joint query (Figure 14 syntax) for the
//! matter-critical subset where both precision and recall are required.
//!
//! ```sh
//! cargo run --release --example legal_discovery
//! ```

use supg::datasets::MixtureDataset;
use supg::query::Engine;
use supg::stats::dist::Beta;

fn main() {
    // A corpus of 150k documents; ~3% reference the disputed contract.
    // The proxy is a fine-tuned language model: sharp but overconfident
    // in the mid-range (same regime as the paper's TACRED/SpanBERT).
    let corpus =
        MixtureDataset::new(150_000, 0.03, Beta::new(5.5, 1.3), Beta::new(0.3, 7.0)).generate(31);
    let (scores, truth) = corpus.into_parts();
    let relevant = truth.iter().filter(|&&l| l).count();
    println!(
        "corpus: {} documents, {relevant} relevant ({:.1}%)\n",
        scores.len(),
        100.0 * relevant as f64 / scores.len() as f64
    );

    let mut engine = Engine::with_seed(99);
    engine.create_table("discovery_corpus", scores.len());
    engine
        .register_proxy("discovery_corpus", "RELEVANCE_MODEL", scores)
        .expect("register proxy");
    // The oracle is a contract lawyer reading the document.
    let reviewer = truth.clone();
    engine
        .register_oracle("discovery_corpus", "IS_RELEVANT", move |doc| reviewer[doc])
        .expect("register oracle");

    // --- Precision-target query: keep the review pile clean. -------------
    let sql = "SELECT * FROM discovery_corpus \
               WHERE IS_RELEVANT(doc) = true \
               ORACLE LIMIT 2000 \
               USING RELEVANCE_MODEL(doc) \
               PRECISION TARGET 90% \
               WITH PROBABILITY 95%";
    println!("{sql}\n");
    let report = engine.execute(sql).expect("PT query failed");
    let hits = report.indices.iter().filter(|&&i| truth[i]).count();
    println!(
        "PT result: {} documents for review, {} lawyer-labels spent ({})",
        report.indices.len(),
        report.oracle_calls,
        report.selector
    );
    println!(
        "  precision {:.1}% (target 90%), recall {:.1}%\n",
        100.0 * hits as f64 / report.indices.len().max(1) as f64,
        100.0 * hits as f64 / relevant as f64
    );

    // --- Joint-target query (Figure 14): both metrics, no budget. --------
    let sql = "SELECT * FROM discovery_corpus \
               WHERE IS_RELEVANT(doc) = true \
               USING RELEVANCE_MODEL(doc) \
               RECALL TARGET 90% PRECISION TARGET 95% \
               WITH PROBABILITY 95%";
    println!("{sql}\n");
    let report = engine.execute(sql).expect("JT query failed");
    let hits = report.indices.iter().filter(|&&i| truth[i]).count();
    println!(
        "JT result: {} documents, all oracle-verified ({} total lawyer-labels)",
        report.indices.len(),
        report.oracle_calls
    );
    println!(
        "  precision {:.1}%, recall {:.1}% — joint queries trade an unbounded\n  \
         (but importance-minimized) labeling bill for both guarantees.",
        100.0 * hits as f64 / report.indices.len().max(1) as f64,
        100.0 * hits as f64 / relevant as f64
    );
}
