//! The paper's §2.1 motivating scenario: biologists selecting hummingbird
//! frames from months of field video, through the SQL front-end.
//!
//! The Fukami lab needs ≥ 90% of all hummingbird frames (missing feeding
//! events corrupts the downstream micro-ecology analysis) but can only
//! label a small number of frames by hand. A DNN classifier provides cheap
//! confidence scores; its calibration, however, cannot be trusted blindly.
//!
//! ```sh
//! cargo run --release --example hummingbird
//! ```

use supg::datasets::{Preset, PresetKind};
use supg::query::Engine;

fn main() {
    // Simulated stand-in for the hummingbird video: 50,000 frames, ~0.1%
    // of which contain a bird, with a well-calibrated DNN proxy (see
    // DESIGN.md §4 for the substitution rationale).
    let preset = Preset::new(PresetKind::ImageNet);
    let video = preset.generate(2024);
    let (scores, truth) = video.into_parts();
    let total_birds = truth.iter().filter(|&&l| l).count();
    println!(
        "field video: {} frames, {total_birds} frames with hummingbirds ({:.2}%)",
        scores.len(),
        100.0 * total_birds as f64 / scores.len() as f64
    );

    // Register the table, the proxy scores, and the "oracle" — in the real
    // deployment this callback would pop a labeling UI for a biologist;
    // here it reads the simulated ground truth.
    let mut engine = Engine::with_seed(7);
    engine.create_table("hummingbird_video", scores.len());
    engine
        .register_proxy("hummingbird_video", "DNN_CLASSIFIER", scores)
        .expect("register proxy");
    let labeler = truth.clone();
    engine
        .register_oracle("hummingbird_video", "HUMMINGBIRD_PRESENT", move |frame| {
            labeler[frame]
        })
        .expect("register oracle");

    // The exact query from §3.1 of the paper.
    let sql = "SELECT * FROM hummingbird_video \
               WHERE HUMMINGBIRD_PRESENT(frame) = true \
               ORACLE LIMIT 1000 \
               USING DNN_CLASSIFIER(frame) \
               RECALL TARGET 90% \
               WITH PROBABILITY 95%";
    println!("\n{sql}\n");
    let report = engine.execute(sql).expect("query failed");

    let found_birds = report.indices.iter().filter(|&&i| truth[i]).count();
    println!(
        "returned {} candidate frames using {} labeling requests (selector {})",
        report.indices.len(),
        report.oracle_calls,
        report.selector
    );
    println!("proxy threshold tau = {:.4e}", report.tau);
    println!(
        "recall achieved: {found_birds}/{total_birds} = {:.1}%  (target 90%)",
        100.0 * found_birds as f64 / total_birds as f64
    );
    println!(
        "precision of returned set: {:.1}%  (the biologists asked for > 20%)",
        100.0 * found_birds as f64 / report.indices.len().max(1) as f64
    );
    println!(
        "\nmanual review saved: {} of {} frames never need a look",
        truth.len() - report.indices.len(),
        truth.len()
    );
}
