//! # SUPG — approximate selection with guarantees using proxies
//!
//! Umbrella crate for the reproduction of *Kang, Gan, Bailis, Hashimoto,
//! Zaharia: "Approximate Selection with Guarantees using Proxies"* (PVLDB
//! 13(11), 2020). It re-exports the public API of every workspace crate so a
//! downstream user can depend on `supg` alone:
//!
//! * [`stats`] — statistical substrate (distributions, confidence bounds).
//! * [`sampling`] — uniform / weighted / importance sampling.
//! * [`datasets`] — the paper's synthetic workloads and simulated real
//!   datasets, drift transforms and CSV I/O.
//! * [`core`] — the SUPG algorithms behind one entry point: the fluent
//!   [`core::SupgSession`] builder with its [`core::SelectorKind`]
//!   algorithm registry, budgeted oracles, and the cost model.
//! * [`query`] — a SQL-ish front-end implementing the paper's query syntax.
//! * [`serve`] — the multi-tenant serving layer: a pooled-dataset query
//!   server with per-tenant oracle budgets and admission control.
//! * [`traffic`] — a deterministic workload simulator that drives the
//!   serving layer under heavy-tailed, Zipf-skewed multi-tenant load
//!   and replays bit-identically from a seed.
//!
//! ## Quickstart
//!
//! ```
//! use supg::core::{CachedOracle, ScoredDataset, SelectorKind, SupgSession};
//! use supg::datasets::BetaDataset;
//!
//! // The paper's Beta(0.01, 2) synthetic: scores ~ Beta, labels ~ Bernoulli(score).
//! let data = BetaDataset::new(0.01, 2.0, 20_000).generate(42);
//! let (scores, labels) = data.into_parts();
//! let dataset = ScoredDataset::new(scores).unwrap();
//! let mut oracle = CachedOracle::from_labels(labels, 1_000);
//!
//! // Recall-target query: recall ≥ 0.9 with probability ≥ 0.95, 1000 oracle calls.
//! let outcome = SupgSession::over(&dataset)
//!     .recall(0.9)
//!     .delta(0.05)
//!     .budget(1_000)
//!     .selector(SelectorKind::ImportanceSampling)
//!     .seed(7)
//!     .run(&mut oracle)
//!     .unwrap();
//! assert_eq!(outcome.selector, "IS-CI-R");
//! assert!(outcome.result.len() > 0);
//! assert!(outcome.oracle_calls <= 1_000);
//! ```
//!
//! A precision-target query swaps `.recall(0.9)` for `.precision(0.9)`;
//! a joint-target query sets both and enables `.joint(stage_budget)`.
//! The same query forms are available as SQL through [`query::Engine`].
//!
//! ## Parallelism & batching
//!
//! The oracle is the expensive resource, and real oracles (GPU models,
//! labeling services) are batch-native. Every pipeline stage therefore
//! issues *batched* label requests, and two session knobs control how a
//! batch executes:
//!
//! ```
//! # use supg::core::{CachedOracle, ScoredDataset, SupgSession};
//! # use supg::datasets::BetaDataset;
//! # let (scores, labels) = BetaDataset::new(0.01, 2.0, 20_000).generate(42).into_parts();
//! # let dataset = ScoredDataset::new(scores).unwrap();
//! # let mut oracle = CachedOracle::from_labels(labels, 1_000);
//! let outcome = SupgSession::over(&dataset)
//!     .recall(0.9)
//!     .budget(1_000)
//!     .parallelism(8) // worker threads labeling each batch
//!     .batch_size(64) // records per batch request
//!     .run(&mut oracle)
//!     .unwrap();
//! ```
//!
//! Oracles built from a thread-safe source
//! ([`core::CachedOracle::parallel`] or
//! [`core::CachedOracle::from_labels`]) label cache misses on a scoped
//! worker pool; serial (`FnMut`) oracles keep labeling one record at a
//! time. **Determinism contract:** random draws stay on the session
//! thread and labels are pure functions of the record index, so a fixed
//! seed produces an identical outcome at every `parallelism` /
//! `batch_size` setting, and `parallelism(1)` is bit-for-bit the
//! sequential path. See [`core::runtime`] for details; the experiment
//! harness's trial runner and the SQL engine's
//! `EngineConfig::runtime` expose the same knobs.
//!
//! ## Serving repeated queries
//!
//! Answering many queries over one corpus should pay the per-dataset
//! preprocessing — the global [`core::RankIndex`] (one descending-score
//! permutation that turns every threshold-set materialization into an
//! O(log n + k) rank-range lookup) and the sampling artifacts (importance
//! weights + alias table) — once, not per query. Wrap the dataset in a
//! [`core::PreparedDataset`] and run sessions over it — the artifacts are
//! built on first use (or eagerly, on the multi-threaded runtime's worker
//! pool, via `PreparedDataset::prepare`/`warm`) and shared by every later
//! query and every thread (the SQL engine does this per registered proxy
//! automatically). Results are bit-identical however the artifacts were
//! built; query result sets arrive in proxy-rank order (best candidates
//! first):
//!
//! ```
//! use std::sync::Arc;
//! use supg::core::{CachedOracle, PreparedDataset, SupgSession};
//! use supg::datasets::BetaDataset;
//!
//! let (scores, labels) = BetaDataset::new(0.01, 2.0, 20_000).generate(42).into_parts();
//! let prepared = Arc::new(PreparedDataset::from_scores(scores).unwrap());
//! for seed in 0..4 {
//!     let mut oracle = CachedOracle::from_labels(labels.clone(), 1_000);
//!     SupgSession::over_shared(Arc::clone(&prepared))
//!         .recall(0.9)
//!         .budget(1_000)
//!         .seed(seed)
//!         .run(&mut oracle)
//!         .unwrap();
//! }
//! assert_eq!(prepared.cached_recipes(), 1); // one build, four queries
//! ```
//!
//! Outcomes are identical to cold sessions on the same seed; see the
//! "Performance & serving" section of [`core`] for the measured numbers.
//!
//! ## Cold starts: the first query on a fresh corpus
//!
//! Pointing the system at a *new* dataset has its own fast path. The
//! alias table's construction feeds — normalization, scaling and Vose's
//! small/large partition — run chunk-parallel on the worker pool with a
//! bit-identical result, and a query known to run once can skip the alias
//! build entirely via [`core::SamplerStrategy`]: `Cdf` always uses the
//! single-pass CDF-inversion sampler, `Auto` uses it only while a recipe
//! is cold and promotes to the cached alias table once the recipe recurs
//! (`SupgSession::sampler_strategy(..)`, or `tuning.sampler` on the SQL
//! engine's `EngineConfig`). Strategies consume the seeded RNG stream
//! differently — each is deterministic, all carry the same `1 − δ`
//! guarantee. For huge answers,
//! `SupgSession::run_view` returns a borrowed [`core::ResultView`] — the
//! threshold set stays a zero-copy slice of the rank index with O(1)
//! membership, and the owned materialization is deferred until you call
//! `into_owned()`.
//!
//! ## Segmented datasets: 10⁸–10⁹-record corpora
//!
//! One global rank index is the wrong artifact once the corpus stops
//! fitting comfortably in a single sort: construction serializes on one
//! n-record merge and the whole index must exist before the first
//! query. [`core::SegmentedDataset`] splits the score column into
//! fixed-size segments that each own their rank index and their slice
//! of the sampling artifacts — built fully in parallel with no final
//! re-merge — while threshold sets are stitched across segment heads in
//! canonical global rank order. Sessions run over it unchanged
//! (`SupgSession::over_segmented`, or `PreparedDataset::from_segmented`
//! for the cached serving path), and the outcome is **bit-identical**
//! to the flat layout at every segment size and parallelism under the
//! default sampler strategy — the layout is an artifact-residency
//! decision, never visible in results. CSV corpora load segment-aligned
//! via [`datasets::io::from_csv_string_segmented`] without ever
//! materializing the contiguous column. See the "Segmented datasets"
//! section of [`core`] for the design and the parity-test inventory.
//!
//! ## Serving under concurrency
//!
//! When many clients share one deployment, wrap the prepared corpora in a
//! [`serve::SupgServer`]: a named [`serve::SessionPool`] of shared
//! `Arc<PreparedDataset>` handles (a SQL engine's catalog can be adopted
//! wholesale with [`serve::SessionPool::adopt_catalog`]), per-tenant
//! oracle-call budget meters, and bounded-in-flight admission control
//! that sheds excess load with typed errors
//! ([`serve::ServeError::Overloaded`] /
//! [`serve::ServeError::BudgetExhausted`]) before any oracle call is
//! spent. Warm artifact lookups go through `supg-core`'s read-locked
//! cache path, so concurrent tenants never serialize on each other —
//! and serving adds only accounting: an admitted query's outcome is
//! bit-identical to running the same spec through a
//! [`core::SupgSession`] directly. See the "Serving under concurrency"
//! section of [`core`] and the [`serve`] crate docs for the details and
//! a runnable example; the `serving` section of `BENCH_selectors.json`
//! records the measured saturation curve.
//!
//! ## Robustness: flaky oracles, deadlines, circuit breaking
//!
//! Real labeling backends fail — transiently (rate limits, timeouts) or
//! permanently (the service is down). The fault-tolerance stack keeps
//! the guarantees intact while degrading gracefully:
//!
//! * [`core::FaultyOracle`] + [`core::FaultPlan`] inject *deterministic*
//!   faults — each record's fate is a pure function of a seed and its
//!   index, reproducible at any parallelism — for testing any oracle
//!   stack without real flakiness.
//! * [`core::ResilientOracle`] + [`core::RetryPolicy`] retry transient
//!   failures with deterministic exponential backoff, seeded jitter and
//!   an optional per-query deadline. A retried query's outcome is
//!   **bit-identical** to the fault-free run — retries re-ask the same
//!   pure label, and only the final success consumes budget — differing
//!   only in the `oracle_retries` / `oracle_failures` / `retry_backoff`
//!   accounting fields of [`core::QueryOutcome`].
//! * The server adds per-dataset **circuit breaking**: consecutive
//!   permanent failures trip the circuit and subsequent queries shed
//!   instantly ([`serve::ServeError::CircuitOpen`]) at zero oracle and
//!   budget cost until a half-open probe finds the backend healthy.
//!   Budget reservations are drop-guarded, so error and panic paths
//!   never leak tenant budget. See "Robust serving" in [`serve`]; the
//!   `resilience` section of `BENCH_selectors.json` records the retry
//!   overhead on warm serving.
//!
//! ## Adaptive planning: calibrate once, plan every query
//!
//! The execution knobs above — parallelism, batch size, sampler
//! strategy, build chunking — can all be set by hand, but
//! [`core::Planner`] resolves them from *measured* signals instead: a
//! one-time per-process calibration of the build kernels
//! ([`core::CalibrationProfile`]), the dataset's size and layout, the
//! artifact-cache state of the query's weight recipe, and an EWMA of
//! observed per-call oracle latency that persists across queries.
//! Attach one with [`core::SupgSession::planned`] (or let
//! [`serve::SupgServer`] do it — every served query is planned, with
//! per-dataset [`serve::PlanOverride`] policies for operators) and the
//! resolved [`core::Plan`] rides on the outcome as a rationale-bearing
//! debug report. Two hard properties: the planner never selects a
//! configuration measured slower than the serial floor, and a planned
//! query is bit-identical to the hand-tuned query at the same resolved
//! configuration — adaptivity changes speed, never answers. The
//! `planner` section of `BENCH_selectors.json` records Auto vs the best
//! hand-tuned configuration across a cold/warm × small/huge ×
//! fast/slow-oracle grid. Explicit knobs always win over the planner:
//! pin `.sampler_strategy(..)` or `.runtime(..)` and the plan honors
//! them verbatim.
//!
//! ## Traffic & observability
//!
//! The serving path instruments itself: [`serve::ServerMetrics`] keeps
//! lock-free counters for completions, failures and each shed cause,
//! plus fixed-bucket latency histograms with nearest-rank quantiles —
//! the oracle histogram uses the same oracle-time accounting that
//! feeds the planner's latency EWMA, so the planner and the dashboards
//! can never disagree about what the oracle costs. Snapshot them with
//! [`serve::SupgServer::metrics`]; per-tenant mirrors (including
//! [`serve::TenantStats::oracle_time`]) come from the registry.
//!
//! The [`traffic`] crate closes the loop: a seeded discrete-event
//! simulator drives a real [`serve::SupgServer`] through the full
//! admission path — bounded-Pareto inter-arrivals, a mixed RT/PT/JT
//! stream, Zipf-skewed recipe popularity, tenant counts in the
//! thousands, deterministic fault injection — and a fixed seed replays
//! the whole session bit-identically at any oracle parallelism:
//!
//! ```
//! use supg::traffic::{run, TrafficConfig};
//!
//! let mut config = TrafficConfig::quick(7);
//! config.queries = 40; // trim for the doctest
//! let report = run(&config);
//! assert_eq!(report.completed + report.failed + report.shed_overload
//!     + report.shed_budget + report.shed_circuit, report.queries);
//! assert_eq!(run(&config).hash(), report.hash()); // bit-identical replay
//! ```
//!
//! The `traffic` section of `BENCH_selectors.json` records a replayed
//! run (and gates on the replay staying bit-identical); CI runs the
//! same smoke via the `traffic_smoke` binary.

pub use supg_core as core;
pub use supg_datasets as datasets;
pub use supg_query as query;
pub use supg_sampling as sampling;
pub use supg_serve as serve;
pub use supg_stats as stats;
pub use supg_traffic as traffic;
