//! # SUPG — approximate selection with guarantees using proxies
//!
//! Umbrella crate for the reproduction of *Kang, Gan, Bailis, Hashimoto,
//! Zaharia: "Approximate Selection with Guarantees using Proxies"* (PVLDB
//! 13(11), 2020). It re-exports the public API of every workspace crate so a
//! downstream user can depend on `supg` alone:
//!
//! * [`stats`] — statistical substrate (distributions, confidence bounds).
//! * [`sampling`] — uniform / weighted / importance sampling.
//! * [`datasets`] — the paper's synthetic workloads and simulated real
//!   datasets, drift transforms and CSV I/O.
//! * [`core`] — the SUPG algorithms: budgeted oracles, threshold selectors
//!   with precision/recall guarantees, the query executor, cost model.
//! * [`query`] — a SQL-ish front-end implementing the paper's query syntax.
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use supg::core::{ApproxQuery, CachedOracle, ScoredDataset, SupgExecutor};
//! use supg::core::selectors::{ImportanceRecall, SelectorConfig};
//! use supg::datasets::BetaDataset;
//!
//! // The paper's Beta(0.01, 2) synthetic: scores ~ Beta, labels ~ Bernoulli(score).
//! let data = BetaDataset::new(0.01, 2.0, 20_000).generate(42);
//! let dataset = ScoredDataset::new(data.scores().to_vec()).unwrap();
//! let mut oracle = CachedOracle::from_labels(data.labels().to_vec(), 1_000);
//!
//! // Recall-target query: recall ≥ 0.9 with probability ≥ 0.95, 1000 oracle calls.
//! let query = ApproxQuery::recall_target(0.9, 0.05, 1_000);
//! let selector = ImportanceRecall::new(SelectorConfig::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let outcome = SupgExecutor::new(&dataset, &query)
//!     .run(&selector, &mut oracle, &mut rng)
//!     .unwrap();
//! assert!(outcome.result.len() > 0);
//! ```

pub use supg_core as core;
pub use supg_datasets as datasets;
pub use supg_query as query;
pub use supg_sampling as sampling;
pub use supg_stats as stats;
